package mc_test

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
	"ttastartup/internal/mc/bmc"
	"ttastartup/internal/mc/explicit"
	"ttastartup/internal/mc/ic3"
	"ttastartup/internal/mc/symbolic"
)

// randomSystem generates a pseudo-random multi-module guarded-command
// system from a seed: 2-3 modules, small domains, cross-module primed
// reads, choice variables, fallbacks — the full feature surface of the
// modelling language.
func randomSystem(seed int64) (*gcl.System, []*gcl.Var) {
	rng := rand.New(rand.NewSource(seed))
	sys := gcl.NewSystem(fmt.Sprintf("rand%d", seed))
	nmods := 2 + rng.Intn(2)
	var vars []*gcl.Var

	// Declare modules and variables first so commands can reference any
	// of them.
	mods := make([]randModInfo, nmods)
	for mi := range nmods {
		mod := sys.Module(fmt.Sprintf("m%d", mi))
		nvars := 1 + rng.Intn(2)
		info := randModInfo{mod: mod}
		for vi := range nvars {
			card := 2 + rng.Intn(5)
			var init gcl.Init
			switch rng.Intn(3) {
			case 0:
				init = gcl.InitConst(rng.Intn(card))
			case 1:
				init = gcl.InitAny()
			default:
				init = gcl.InitSet(0, card-1)
			}
			v := mod.Var(fmt.Sprintf("v%d", vi), gcl.IntType(fmt.Sprintf("t%d_%d", mi, vi), card), init)
			info.own = append(info.own, v)
			vars = append(vars, v)
		}
		if rng.Intn(2) == 0 {
			info.choice = mod.Choice("ch", gcl.IntType("chT", 2+rng.Intn(3)))
		}
		mods[mi] = info
	}

	// Random expressions over the declared variables.
	var intExpr func(mi, depth int) gcl.Expr
	boolExpr := func(mi, depth int) gcl.Expr { return nil } // forward decl
	intExpr = func(mi, depth int) gcl.Expr {
		pick := rng.Intn(6)
		if depth <= 0 {
			pick = rng.Intn(2)
		}
		switch pick {
		case 0, 1:
			v := vars[rng.Intn(len(vars))]
			// Primed reads only to earlier modules (acyclic evaluation).
			if rng.Intn(3) == 0 && v.Module != mods[mi].mod && moduleIndex(mods, v) < mi {
				return gcl.XN(v)
			}
			if v.Module == mods[mi].mod || rng.Intn(2) == 0 {
				return gcl.X(v)
			}
			return gcl.X(v)
		case 2:
			if ch := mods[mi].choice; ch != nil {
				return gcl.X(ch)
			}
			v := mods[mi].own[0]
			return gcl.X(v)
		case 3:
			e := intExpr(mi, depth-1)
			return gcl.AddSat(e, 1+rng.Intn(2))
		case 4:
			e := intExpr(mi, depth-1)
			return gcl.AddMod(e, rng.Intn(e.Type().Card))
		default:
			return gcl.Ite(boolExpr(mi, depth-1), intExpr(mi, depth-1), intExpr(mi, depth-1))
		}
	}
	boolExpr = func(mi, depth int) gcl.Expr {
		pick := rng.Intn(5)
		if depth <= 0 {
			pick = 0
		}
		switch pick {
		case 0:
			a := intExpr(mi, 0)
			return gcl.Lt(a, gcl.C(a.Type(), rng.Intn(a.Type().Card)+0))
		case 1:
			return gcl.Eq(intExpr(mi, depth-1), intExpr(mi, depth-1))
		case 2:
			return gcl.And(boolExpr(mi, depth-1), boolExpr(mi, depth-1))
		case 3:
			return gcl.Or(boolExpr(mi, depth-1), gcl.Not(boolExpr(mi, depth-1)))
		default:
			return gcl.Le(intExpr(mi, depth-1), intExpr(mi, depth-1))
		}
	}

	// Commands: choice variables may appear in guards only when the
	// module has no fallback.
	for mi, info := range mods {
		ncmds := 1 + rng.Intn(3)
		useFallback := rng.Intn(2) == 0
		for ci := range ncmds {
			guard := boolExpr(mi, 2)
			if useFallback && info.choice != nil {
				// Keep guards choice-free by construction: rebuild the
				// guard from the module's first own variable only.
				v := info.own[0]
				guard = gcl.Le(gcl.X(v), gcl.C(v.Type, rng.Intn(v.Type.Card)))
			}
			var updates []gcl.Update
			for _, v := range info.own {
				if rng.Intn(3) != 0 {
					e := intExpr(mi, 2)
					updates = append(updates, gcl.Set(v, clampTo(v, e)))
				}
			}
			info.mod.Cmd(fmt.Sprintf("c%d", ci), guard, updates...)
		}
		if useFallback {
			info.mod.Fallback("fb")
		}
	}
	sys.MustFinalize()
	return sys, vars
}

// randModInfo groups one generated module's pieces.
type randModInfo struct {
	mod    *gcl.Module
	own    []*gcl.Var
	choice *gcl.Var
}

func moduleIndex(mods []randModInfo, v *gcl.Var) int {
	for i, m := range mods {
		if m.mod == v.Module {
			return i
		}
	}
	return len(mods)
}

// clampTo coerces an expression into v's domain via a modular guard.
func clampTo(v *gcl.Var, e gcl.Expr) gcl.Expr {
	if e.Type().Card <= v.Type.Card {
		return e
	}
	// Conditional: keep e when in range, else 0.
	return gcl.Ite(gcl.Lt(e, gcl.C(v.Type, v.Type.Card-1)), e, gcl.C(v.Type, 0))
}

// TestRandomSystemsEnginesAgree is the fuzzing oracle for the whole
// verification stack: on random systems, the explicit and symbolic
// reachable-state counts must match, random invariants must get identical
// verdicts from explicit, symbolic, and (bounded) BMC, and violated
// invariants must come with replayable traces.
func TestRandomSystemsEnginesAgree(t *testing.T) {
	f := func(seed int64) bool {
		sys, vars := randomSystem(seed % 10_000)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))

		g, err := explicit.Explore(sys, explicit.Options{MaxStates: 200_000})
		if err != nil {
			t.Logf("seed %d: explore: %v", seed, err)
			return false
		}
		eng, err := symbolic.New(sys.Compile(), symbolic.Options{})
		if err != nil {
			t.Logf("seed %d: symbolic: %v", seed, err)
			return false
		}
		count, err := eng.CountStates()
		if err != nil {
			t.Logf("seed %d: count: %v", seed, err)
			return false
		}
		if count.Cmp(big.NewInt(int64(g.NumStates()))) != 0 {
			t.Logf("seed %d: counts differ: symbolic %v explicit %d", seed, count, g.NumStates())
			return false
		}

		// A random invariant over a random variable.
		v := vars[rng.Intn(len(vars))]
		bound := rng.Intn(v.Type.Card)
		prop := mc.Property{
			Name: "rand-inv",
			Kind: mc.Invariant,
			Pred: gcl.Le(gcl.X(v), gcl.C(v.Type, bound)),
		}
		expRes, err := explicit.CheckInvariant(sys, prop, explicit.Options{MaxStates: 200_000})
		if err != nil {
			t.Logf("seed %d: explicit check: %v", seed, err)
			return false
		}
		symRes, err := eng.CheckInvariant(prop)
		if err != nil {
			t.Logf("seed %d: symbolic check: %v", seed, err)
			return false
		}
		if expRes.Holds() != symRes.Holds() {
			t.Logf("seed %d: verdicts differ: explicit %v symbolic %v", seed, expRes.Verdict, symRes.Verdict)
			return false
		}
		bmcRes, err := bmc.CheckInvariant(sys.Compile(), prop, bmc.Options{MaxDepth: 30})
		if err != nil {
			t.Logf("seed %d: bmc: %v", seed, err)
			return false
		}
		if symRes.Holds() && bmcRes.Verdict == mc.Violated {
			t.Logf("seed %d: bmc found a violation of a proved invariant", seed)
			return false
		}
		// IC3 is unbounded: its verdict must match symbolic exactly, with
		// a proof (not a bounded pass) for every true invariant.
		icRes, err := ic3.CheckInvariant(sys.Compile(), prop, ic3.Options{})
		if err != nil {
			t.Logf("seed %d: ic3: %v", seed, err)
			return false
		}
		if symRes.Holds() {
			if icRes.Verdict != mc.Holds {
				t.Logf("seed %d: ic3 verdict %v on a proved invariant", seed, icRes.Verdict)
				return false
			}
		} else {
			if icRes.Verdict != mc.Violated {
				t.Logf("seed %d: ic3 verdict %v on a violated invariant", seed, icRes.Verdict)
				return false
			}
			if !replay(t, sys, prop, icRes.Trace) {
				return false
			}
		}
		// k-induction (no simple-path): sound in both directions, but may
		// return holds-bounded — only definite verdicts are compared.
		indRes, err := bmc.CheckInvariantInduction(sys.Compile(), prop, bmc.InductionOptions{MaxK: 30})
		if err != nil {
			t.Logf("seed %d: induction: %v", seed, err)
			return false
		}
		if indRes.Verdict == mc.Holds && !symRes.Holds() {
			t.Logf("seed %d: induction proved a violated invariant", seed)
			return false
		}
		if indRes.Verdict == mc.Violated {
			if symRes.Holds() {
				t.Logf("seed %d: induction refuted a proved invariant", seed)
				return false
			}
			if !replay(t, sys, prop, indRes.Trace) {
				return false
			}
		}
		if !symRes.Holds() {
			// The violation is reachable; with the graph's BFS depth as
			// bound, BMC must find it too.
			depth := bfsDepth(g)
			deepRes, err := bmc.CheckInvariant(sys.Compile(), prop, bmc.Options{MaxDepth: depth})
			if err != nil {
				t.Logf("seed %d: bmc deep: %v", seed, err)
				return false
			}
			if deepRes.Verdict != mc.Violated {
				t.Logf("seed %d: bmc missed a violation within depth %d", seed, depth)
				return false
			}
			// Traces must replay and end in violation.
			if !replay(t, sys, prop, symRes.Trace) || !replay(t, sys, prop, deepRes.Trace) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// FuzzRandomLiveness is the liveness counterpart of the invariant fuzzing
// oracle: random Eventually goals on random systems, with the explicit
// lasso search as ground truth. IC3 answers through the l2s product
// (internal/gcl/l2s) and must agree exactly; simple-path k-induction on
// the product and the BMC recurrence-diameter fallback may stop bounded
// but must never contradict; and every refutation must come back as a
// concrete lasso on the SOURCE system that replays through the
// interpreter, back-edge included. The seed corpus (f.Add plus
// testdata/fuzz) covers both verdicts on systems with choice variables,
// fallbacks, and cross-module primed reads.
func FuzzRandomLiveness(f *testing.F) {
	for _, seed := range []int64{3, 7, 19, 42, 1234, 4071} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		sys, vars := randomSystem(seed % 10_000)
		rng := rand.New(rand.NewSource(seed ^ 0x11fe))

		// A random reachability goal over a random variable.
		v := vars[rng.Intn(len(vars))]
		goal := rng.Intn(v.Type.Card)
		prop := mc.Property{
			Name: "rand-live",
			Kind: mc.Eventually,
			Pred: gcl.Ge(gcl.X(v), gcl.C(v.Type, goal)),
		}

		expRes, err := explicit.CheckEventually(sys, prop, explicit.Options{MaxStates: 200_000})
		if err != nil {
			t.Fatalf("seed %d: explicit: %v", seed, err)
		}
		if !expRes.Holds() {
			if expRes.Trace.LoopsTo < 0 {
				t.Fatalf("seed %d: explicit refutation has no lasso", seed)
			}
			verifyTrace(t, sys, prop, expRes.Trace)
		}

		// IC3 through the l2s product is unbounded: exact agreement.
		icRes, err := ic3.CheckEventually(sys, prop, ic3.Options{})
		if err != nil {
			t.Fatalf("seed %d: ic3: %v", seed, err)
		}
		if expRes.Holds() {
			if icRes.Verdict != mc.Holds {
				t.Fatalf("seed %d: ic3 verdict %v on a goal the explicit search proves", seed, icRes.Verdict)
			}
		} else {
			if icRes.Verdict != mc.Violated {
				t.Fatalf("seed %d: ic3 verdict %v on a refuted goal", seed, icRes.Verdict)
			}
			if icRes.Trace.LoopsTo < 0 {
				t.Fatalf("seed %d: ic3 projected lasso has no back-edge", seed)
			}
			verifyTrace(t, sys, prop, icRes.Trace)
		}

		// Simple-path induction on the product closes when k reaches the
		// product's recurrence diameter; below that it reports bounded.
		// Only definite verdicts are compared.
		indRes, err := bmc.CheckEventuallyInduction(sys, prop, bmc.InductionOptions{MaxK: 25, SimplePath: true})
		if err != nil {
			t.Fatalf("seed %d: induction: %v", seed, err)
		}
		if indRes.Verdict == mc.Holds && !expRes.Holds() {
			t.Fatalf("seed %d: induction proved a refuted goal", seed)
		}
		if indRes.Verdict == mc.Violated {
			if expRes.Holds() {
				t.Fatalf("seed %d: induction refuted a proved goal", seed)
			}
			if indRes.Trace.LoopsTo < 0 {
				t.Fatalf("seed %d: induction projected lasso has no back-edge", seed)
			}
			verifyTrace(t, sys, prop, indRes.Trace)
		}

		// BMC: lasso refutation up to the depth bound, with the
		// recurrence-diameter fallback upgrading to a definitive Holds on
		// systems this small. Definite verdicts must agree.
		bmcRes, err := bmc.CheckEventuallyRefute(sys.Compile(), prop, bmc.Options{MaxDepth: 25})
		if err != nil {
			t.Fatalf("seed %d: bmc: %v", seed, err)
		}
		if bmcRes.Verdict == mc.Holds && !expRes.Holds() {
			t.Fatalf("seed %d: bmc diameter fallback proved a refuted goal", seed)
		}
		if bmcRes.Verdict == mc.Violated {
			if expRes.Holds() {
				t.Fatalf("seed %d: bmc refuted a proved goal", seed)
			}
			verifyTrace(t, sys, prop, bmcRes.Trace)
		}
	})
}

// bfsDepth computes the height of the exploration tree.
func bfsDepth(g *explicit.Graph) int {
	depth := make([]int, len(g.States))
	maxDepth := 0
	for i := range g.States {
		if p := g.Parents[i]; p >= 0 {
			depth[i] = depth[p] + 1
			if depth[i] > maxDepth {
				maxDepth = depth[i]
			}
		}
	}
	return maxDepth + 1
}

// replay validates a counterexample trace against the stepper.
func replay(t *testing.T, sys *gcl.System, prop mc.Property, tr *mc.Trace) bool {
	t.Helper()
	if tr == nil || tr.Len() == 0 {
		t.Log("missing trace")
		return false
	}
	stepper := gcl.NewStepper(sys)
	vars := sys.StateVars()
	first := gcl.Key(tr.States[0], vars)
	okInit := false
	stepper.InitStates(func(st gcl.State) bool {
		if gcl.Key(st, vars) == first {
			okInit = true
			return false
		}
		return true
	})
	if !okInit {
		t.Log("trace does not start initial")
		return false
	}
	for i := 0; i+1 < tr.Len(); i++ {
		want := gcl.Key(tr.States[i+1], vars)
		ok := false
		stepper.Successors(tr.States[i], func(next gcl.State) bool {
			if gcl.Key(next, vars) == want {
				ok = true
				return false
			}
			return true
		})
		if !ok {
			t.Logf("trace step %d invalid", i)
			return false
		}
	}
	if gcl.Holds(prop.Pred, tr.States[tr.Len()-1]) {
		t.Log("trace does not end in violation")
		return false
	}
	return true
}
