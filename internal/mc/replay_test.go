package mc_test

import (
	"testing"

	"ttastartup/internal/bdd"
	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
	"ttastartup/internal/mc/bmc"
	"ttastartup/internal/mc/explicit"
	"ttastartup/internal/mc/ic3"
	"ttastartup/internal/mc/symbolic"
	"ttastartup/internal/tta/original"
	"ttastartup/internal/tta/startup"
)

// Counterexample-replay oracle: every trace an engine emits must replay
// step by step through the concrete guarded-command interpreter — first
// state initial, every step an enabled transition, final state violating
// the lemma (or, for liveness lassos, a closing loop avoiding the goal).
// The engines compile the model to CNF or BDDs; the interpreter walks the
// AST directly, so a replayed trace certifies the whole compilation
// pipeline, not just the engine. The symbolic engine runs with dynamic
// variable reordering off AND on: reordering rewrites live BDD nodes in
// place mid-search, and a replayed trace is the end-to-end proof that the
// rewrite never changed what any Ref denotes.

// replayOracle is verifyTrace plus a sanity check that intermediate states
// do not already violate an invariant (engines report shortest-to-violation
// layers; an earlier violation would mean the trace is not minimal in the
// way the engine claims).
func replayOracle(t *testing.T, sys *gcl.System, prop mc.Property, res *mc.Result, engine string) {
	t.Helper()
	if res.Verdict != mc.Violated {
		t.Fatalf("%s: verdict %v, want VIOLATED", engine, res.Verdict)
	}
	verifyTrace(t, sys, prop, res.Trace)
	if prop.Kind == mc.Invariant {
		for i := 0; i+1 < res.Trace.Len(); i++ {
			if !gcl.Holds(prop.Pred, res.Trace.States[i]) {
				t.Errorf("%s: intermediate state %d already violates %s", engine, i, prop.Name)
			}
		}
	}
}

// reorderConfigs returns the symbolic-engine option sets the replay tests
// sweep: reordering off, and reordering on with a threshold low enough to
// actually fire on these small models.
func reorderConfigs() map[string]symbolic.Options {
	return map[string]symbolic.Options{
		"reorder-off": {},
		"reorder-on":  {BDD: bdd.Config{AutoReorder: true, ReorderStart: 1 << 10}},
	}
}

// TestReplaySafetyAllEngines gets a safety counterexample out of each of
// the five engines on the bus model with a degree-3 faulty node and
// replays every trace through the interpreter.
func TestReplaySafetyAllEngines(t *testing.T) {
	model, err := original.Build(original.Config{N: 3, FaultyNode: 1, FaultDegree: 3, DeltaInit: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys, prop := model.Sys, model.Safety()
	comp := sys.Compile()

	expRes, err := explicit.CheckInvariant(sys, prop, explicit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayOracle(t, sys, prop, expRes, "explicit")

	for name, opts := range reorderConfigs() {
		eng, err := symbolic.New(comp, opts)
		if err != nil {
			t.Fatal(err)
		}
		symRes, err := eng.CheckInvariant(prop)
		if err != nil {
			t.Fatal(err)
		}
		replayOracle(t, sys, prop, symRes, "symbolic/"+name)
		if symRes.Trace.Len() != expRes.Trace.Len() {
			t.Errorf("symbolic/%s: trace length %d, explicit found %d (both engines are breadth-first)",
				name, symRes.Trace.Len(), expRes.Trace.Len())
		}
	}

	bmcRes, err := bmc.CheckInvariant(comp, prop, bmc.Options{MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	replayOracle(t, sys, prop, bmcRes, "bmc")

	indRes, err := bmc.CheckInvariantInduction(comp, prop, bmc.InductionOptions{MaxK: 20})
	if err != nil {
		t.Fatal(err)
	}
	replayOracle(t, sys, prop, indRes, "induction")

	icRes, err := ic3.CheckInvariant(comp, prop, ic3.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayOracle(t, sys, prop, icRes, "ic3")
}

// TestReplayLivenessLassos replays liveness lassos from all five engines
// on the bus model, where a degree-3 faulty node keeps the cluster from
// ever starting up. Explicit and symbolic find lassos natively, BMC
// unrolls them, and induction/IC3 refute through the l2s product
// (internal/gcl/l2s) — for those the projected trace must land back on
// the SOURCE state space with a concrete back-edge, which is exactly what
// the replay oracle certifies.
func TestReplayLivenessLassos(t *testing.T) {
	model, err := original.Build(original.Config{N: 3, FaultyNode: 1, FaultDegree: 3, DeltaInit: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys, prop := model.Sys, model.Liveness()
	comp := sys.Compile()

	expRes, err := explicit.CheckEventually(sys, prop, explicit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayOracle(t, sys, prop, expRes, "explicit")
	if expRes.Trace.LoopsTo < 0 {
		t.Fatalf("explicit: liveness refutation has no lasso (LoopsTo=%d)", expRes.Trace.LoopsTo)
	}

	for name, opts := range reorderConfigs() {
		eng, err := symbolic.New(comp, opts)
		if err != nil {
			t.Fatal(err)
		}
		symRes, err := eng.CheckEventually(prop)
		if err != nil {
			t.Fatal(err)
		}
		replayOracle(t, sys, prop, symRes, "symbolic/"+name)
		if symRes.Trace.LoopsTo < 0 {
			t.Fatalf("symbolic/%s: liveness refutation has no lasso", name)
		}
	}

	bmcRes, err := bmc.CheckEventuallyRefute(comp, prop, bmc.Options{MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	replayOracle(t, sys, prop, bmcRes, "bmc")

	indRes, err := bmc.CheckEventuallyInduction(sys, prop, bmc.InductionOptions{MaxK: 20, SimplePath: true})
	if err != nil {
		t.Fatal(err)
	}
	replayOracle(t, sys, prop, indRes, "induction")
	if indRes.Trace.LoopsTo < 0 {
		t.Fatalf("induction: projected l2s refutation has no lasso back-edge")
	}

	icRes, err := ic3.CheckEventually(sys, prop, ic3.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayOracle(t, sys, prop, icRes, "ic3")
	if icRes.Trace.LoopsTo < 0 {
		t.Fatalf("ic3: projected l2s refutation has no lasso back-edge")
	}
}

// TestReplayHubClique replays the paper's big-bang-off clique
// counterexample (hub topology) from the symbolic engine with reordering
// off and on, plus the bounded engine. The hub model is the larger state
// space, so this is the case where auto-reordering actually fires during
// the search that produces the trace.
func TestReplayHubClique(t *testing.T) {
	if testing.Short() {
		t.Skip("hub clique search takes seconds")
	}
	cfg := startup.DefaultConfig(3).WithFaultyHub(0)
	cfg.DeltaInit = 2
	cfg.DisableBigBang = true
	model, err := startup.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, prop := model.Sys, model.Safety()
	comp := sys.Compile()

	for name, opts := range reorderConfigs() {
		eng, err := symbolic.New(comp, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.CheckInvariant(prop)
		if err != nil {
			t.Fatal(err)
		}
		replayOracle(t, sys, prop, res, "symbolic/"+name)
		if name == "reorder-on" && res.Stats.Reorders == 0 {
			t.Logf("note: no reorder fired on the hub clique search (pool stayed under %d nodes)", 1<<10)
		}
	}

	bmcRes, err := bmc.CheckInvariant(comp, prop, bmc.Options{MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	replayOracle(t, sys, prop, bmcRes, "bmc")
}
