package mc

import (
	"time"

	"ttastartup/internal/obs"
	"ttastartup/internal/sat"
)

// Run ties one engine check to the instrumentation scope: every engine
// starts a Run, fills Run.Stats as it goes, and returns Run.Finish(v),
// so Stats.Duration, the per-run registry metrics, and the top-level
// engine span are measured by exactly one code path.
type Run struct {
	Stats Stats

	scope obs.Scope
	span  *obs.Span
	start time.Time
	done  bool
}

// StartRun opens a run for one engine/property pair: it stamps
// Stats.Engine, starts the wall clock, and opens the engine-category
// span. The zero scope disables all publishing; the clock still runs.
func StartRun(scope obs.Scope, engine, property string) *Run {
	r := &Run{scope: scope, start: time.Now()}
	r.Stats.Engine = engine
	r.span = scope.Trace.Start(obs.CatEngine, engine+" "+property)
	r.span.Attr("property", property)
	return r
}

// Scope returns the run's instrumentation scope for engine-specific use.
func (r *Run) Scope() obs.Scope { return r.scope }

// Span returns the engine span so engines can open children under it.
func (r *Run) Span() *obs.Span { return r.span }

// Finish stamps Stats.Duration, publishes run-level metrics, ends the
// engine span with the verdict, and returns the completed Stats.
// Idempotent: only the first call measures.
func (r *Run) Finish(v Verdict) Stats {
	if !r.done {
		r.done = true
		r.Stats.Duration = time.Since(r.start)
		r.scope.Reg.Counter(obs.MRuns).Inc()
		r.scope.Reg.Histogram(obs.MRunMS).Observe(r.Stats.Duration.Milliseconds())
		r.scope.Reg.Gauge(obs.MRunIters).SetMax(int64(r.Stats.Iterations))
		r.span.Attr("verdict", v.String()).End()
	}
	return r.Stats
}

// Abort ends the run without a verdict (engine error or cancellation),
// closing the span so traces stay well formed. Idempotent, and a no-op
// after Finish.
func (r *Run) Abort(err error) {
	if r.done {
		return
	}
	r.done = true
	r.Stats.Duration = time.Since(r.start)
	if err != nil {
		r.span.Attr("error", err.Error())
	}
	r.span.End()
}

// SATTap routes every Solve call of one solver through a single
// accounting path: it counts queries, wraps each query in a sat-category
// span, and flushes the solver's plain-field counter deltas to the
// registry after each call — so registry totals stay live while the
// solver's innermost loops stay atomic-free. All SAT engines (BMC,
// k-induction, IC3) issue their queries through a tap.
type SATTap struct {
	scope   obs.Scope
	solver  *sat.Solver
	queries int

	qc, cc, pc, dc, rc, lc                            *obs.Counter
	lastConf, lastProp, lastDec, lastRest, lastLearnt int
}

// NewSATTap wraps solver with the given scope (zero scope = counting
// only, no publishing).
func NewSATTap(scope obs.Scope, solver *sat.Solver) *SATTap {
	return &SATTap{
		scope:  scope,
		solver: solver,
		qc:     scope.Reg.Counter(obs.MSATQueries),
		cc:     scope.Reg.Counter(obs.MSATConflicts),
		pc:     scope.Reg.Counter(obs.MSATPropagations),
		dc:     scope.Reg.Counter(obs.MSATDecisions),
		rc:     scope.Reg.Counter(obs.MSATRestarts),
		lc:     scope.Reg.Counter(obs.MSATLearnts),
	}
}

// Solver returns the wrapped solver (for model/core extraction).
func (t *SATTap) Solver() *sat.Solver { return t.solver }

// Solve issues one query through the tap.
func (t *SATTap) Solve(assumptions ...sat.Lit) bool {
	t.queries++
	t.qc.Inc()
	sp := t.scope.Trace.Start(obs.CatSAT, "solve")
	ok := t.solver.Solve(assumptions...)
	if sp != nil {
		res := "unsat"
		switch {
		case ok:
			res = "sat"
		case t.solver.Stopped():
			res = "interrupted"
		}
		sp.Attr("result", res).End()
	}
	t.Flush()
	return ok
}

// Flush publishes the solver counter deltas accumulated since the last
// flush. Called automatically by Solve; call it directly after solver
// work done outside Solve (e.g. Simplify).
func (t *SATTap) Flush() {
	conf := t.solver.Conflicts()
	prop := t.solver.Propagations()
	dec := t.solver.Decisions()
	rest := t.solver.Restarts()
	learnt := t.solver.LearntTotal()
	t.cc.Add(int64(conf - t.lastConf))
	t.pc.Add(int64(prop - t.lastProp))
	t.dc.Add(int64(dec - t.lastDec))
	t.rc.Add(int64(rest - t.lastRest))
	t.lc.Add(int64(learnt - t.lastLearnt))
	t.lastConf, t.lastProp, t.lastDec, t.lastRest, t.lastLearnt = conf, prop, dec, rest, learnt
}

// Queries returns the number of Solve calls issued through the tap.
func (t *SATTap) Queries() int { return t.queries }

// FillStats adds the tap's query count and the solver's cumulative
// search counters into st. Engines with several solvers (k-induction's
// base and step checkers) call it once per tap; the fields accumulate.
func (t *SATTap) FillStats(st *Stats) {
	st.SATQueries += t.queries
	st.Conflicts += t.solver.Conflicts()
	st.Decisions += t.solver.Decisions()
	st.Propagations += t.solver.Propagations()
	st.Restarts += t.solver.Restarts()
}
