package explicit_test

import (
	"testing"

	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
	"ttastartup/internal/mc/explicit"
)

// chain builds a nondeterministic counter: inc by 1 or hold below a cap.
func chain(card, cap int) (*gcl.System, *gcl.Var) {
	sys := gcl.NewSystem("chain")
	m := sys.Module("m")
	typ := gcl.IntType("c", card)
	v := m.Var("v", typ, gcl.InitConst(0))
	m.Cmd("inc", gcl.Lt(gcl.X(v), gcl.C(typ, cap)), gcl.Set(v, gcl.AddSat(gcl.X(v), 1)))
	m.Cmd("hold", gcl.B(true))
	sys.MustFinalize()
	return sys, v
}

func TestExploreCountsAndEdges(t *testing.T) {
	sys, _ := chain(16, 9)
	g, err := explicit.Explore(sys, explicit.Options{StoreEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 10 {
		t.Errorf("states = %d, want 10", g.NumStates())
	}
	if g.InitCount != 1 {
		t.Errorf("inits = %d", g.InitCount)
	}
	if len(g.Deadlocks) != 0 {
		t.Errorf("deadlocks = %d", len(g.Deadlocks))
	}
	// Interior states have two successors (inc, hold); the cap has one.
	twoSucc := 0
	for _, succs := range g.Edges {
		if len(succs) == 2 {
			twoSucc++
		}
	}
	if twoSucc != 9 {
		t.Errorf("states with two successors = %d, want 9", twoSucc)
	}
}

func TestInvariantTraceIsShortestPath(t *testing.T) {
	sys, v := chain(16, 9)
	prop := mc.Property{Name: "v-lt-5", Kind: mc.Invariant,
		Pred: gcl.Lt(gcl.X(v), gcl.C(gcl.IntType("c", 16), 5))}
	res, err := explicit.CheckInvariant(sys, prop, explicit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Violated {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Trace.Len() != 6 { // 0..5 via BFS shortest path
		t.Errorf("trace length %d, want 6", res.Trace.Len())
	}
}

func TestEventuallyLasso(t *testing.T) {
	sys, v := chain(16, 9)
	prop := mc.Property{Name: "reaches-9", Kind: mc.Eventually,
		Pred: gcl.Eq(gcl.X(v), gcl.C(gcl.IntType("c", 16), 9))}
	res, err := explicit.CheckEventually(sys, prop, explicit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The "hold" self-loop lets runs avoid 9 forever.
	if res.Verdict != mc.Violated {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Trace == nil || res.Trace.LoopsTo < 0 {
		t.Error("expected a lasso trace")
	}
}

func TestKindMismatch(t *testing.T) {
	sys, _ := chain(4, 2)
	inv := mc.Property{Name: "p", Kind: mc.Invariant, Pred: gcl.True()}
	ev := mc.Property{Name: "q", Kind: mc.Eventually, Pred: gcl.True()}
	if _, err := explicit.CheckInvariant(sys, ev, explicit.Options{}); err == nil {
		t.Error("CheckInvariant accepted Eventually")
	}
	if _, err := explicit.CheckEventually(sys, inv, explicit.Options{}); err == nil {
		t.Error("CheckEventually accepted Invariant")
	}
}

func TestCheckCTLInPackage(t *testing.T) {
	sys, v := chain(8, 7)
	typ := gcl.IntType("c", 8)
	f := mc.CTLEF(mc.CTLAtom(gcl.Eq(gcl.X(v), gcl.C(typ, 7))))
	res, err := explicit.CheckCTL(sys, "ef-top", f, explicit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Holds {
		t.Errorf("EF top: %v", res.Verdict)
	}
}
