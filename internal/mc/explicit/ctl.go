package explicit

import (
	"fmt"
	"math/big"
	"time"

	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
)

// CheckCTL evaluates a CTL formula over the explored state graph by
// explicit fixpoint iteration — the reference implementation the symbolic
// evaluator is cross-checked against.
func CheckCTL(sys *gcl.System, name string, f *mc.CTLFormula, opts Options) (*mc.Result, error) {
	start := time.Now()
	opts.StoreEdges = true
	g, err := Explore(sys, opts)
	if err != nil {
		return nil, err
	}
	sat := evalCTL(g, f)

	prop := mc.Property{Name: name, Kind: mc.Invariant, Pred: gcl.True()}
	res := &mc.Result{
		Property: prop,
		Verdict:  mc.Holds,
		Stats: mc.Stats{
			Engine:    EngineName,
			Duration:  time.Since(start),
			Visited:   g.NumStates(),
			Reachable: big.NewInt(int64(g.NumStates())),
		},
	}
	for i := 0; i < g.InitCount; i++ {
		if !sat[i] {
			res.Verdict = mc.Violated
			res.Trace = mc.NewTrace([]gcl.State{g.States[i]})
			break
		}
	}
	return res, nil
}

// evalCTL returns, per state index, whether the formula holds.
func evalCTL(g *Graph, f *mc.CTLFormula) []bool {
	n := len(g.States)
	out := make([]bool, n)

	exInto := func(set []bool) []bool {
		r := make([]bool, n)
		for i := range n {
			for _, s := range g.Edges[i] {
				if set[s] {
					r[i] = true
					break
				}
			}
		}
		return r
	}
	lfp := func(seed []bool, step func([]bool) []bool) []bool {
		cur := seed
		for {
			next := step(cur)
			changed := false
			for i := range n {
				next[i] = next[i] || cur[i]
				if next[i] != cur[i] {
					changed = true
				}
			}
			if !changed {
				return cur
			}
			cur = next
		}
	}

	switch f.Op {
	case mc.CTLAtomOp:
		for i, st := range g.States {
			out[i] = gcl.Holds(f.Pred, st)
		}
	case mc.CTLNotOp:
		l := evalCTL(g, f.L)
		for i := range n {
			out[i] = !l[i]
		}
	case mc.CTLAndOp:
		l, r := evalCTL(g, f.L), evalCTL(g, f.R)
		for i := range n {
			out[i] = l[i] && r[i]
		}
	case mc.CTLOrOp:
		l, r := evalCTL(g, f.L), evalCTL(g, f.R)
		for i := range n {
			out[i] = l[i] || r[i]
		}
	case mc.CTLEXOp:
		out = exInto(evalCTL(g, f.L))
	case mc.CTLEFOp:
		out = lfp(evalCTL(g, f.L), exInto)
	case mc.CTLEGOp:
		// νZ. f ∧ EX Z: iteratively remove states with no successor in Z.
		out = evalCTL(g, f.L)
		for changed := true; changed; {
			changed = false
			for i := range n {
				if !out[i] {
					continue
				}
				ok := false
				for _, s := range g.Edges[i] {
					if out[s] {
						ok = true
						break
					}
				}
				if !ok {
					out[i] = false
					changed = true
				}
			}
		}
	case mc.CTLEUOp:
		l, r := evalCTL(g, f.L), evalCTL(g, f.R)
		out = lfp(r, func(cur []bool) []bool {
			nxt := exInto(cur)
			for i := range n {
				nxt[i] = nxt[i] && l[i]
			}
			return nxt
		})
	case mc.CTLAXOp:
		l := evalCTL(g, f.L)
		for i := range n {
			out[i] = true
			for _, s := range g.Edges[i] {
				if !l[s] {
					out[i] = false
					break
				}
			}
		}
	case mc.CTLAFOp:
		eg := evalCTL(g, mc.CTLEG(mc.CTLNot(f.L)))
		for i := range n {
			out[i] = !eg[i]
		}
	case mc.CTLAGOp:
		ef := evalCTL(g, mc.CTLEF(mc.CTLNot(f.L)))
		for i := range n {
			out[i] = !ef[i]
		}
	default:
		panic(fmt.Sprintf("explicit: unknown CTL operator %d", int(f.Op)))
	}
	return out
}
