// Package explicit implements an explicit-state model checker: hash-based
// breadth-first reachability with counterexample reconstruction, and
// liveness checking (AF p) via a greatest-fixpoint computation of EG(¬p)
// over the explored graph. It corresponds to the explicit-state engine the
// paper used in its preliminary experiments (Section 3).
package explicit

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
	"ttastartup/internal/obs"
)

// ctxStride is how many BFS head advances pass between context polls: the
// per-state work is small, so polling every state would be measurable, and
// polling every 256 keeps cancellation latency in the microsecond range.
const ctxStride = 256

// EngineName identifies this engine in Stats.
const EngineName = "explicit"

// ErrStateLimit is returned when exploration exceeds Options.MaxStates.
var ErrStateLimit = errors.New("explicit: state limit exceeded")

// Options tunes exploration.
type Options struct {
	// MaxStates caps the number of distinct states explored
	// (0 = default 5,000,000).
	MaxStates int
	// StoreEdges retains the successor adjacency, needed by liveness
	// checking; invariant checking leaves it off to save memory.
	StoreEdges bool
	// Obs receives frontier/visited gauges per BFS layer and the engine
	// span. The zero value disables instrumentation.
	Obs obs.Scope
}

// layerObs tracks BFS layer boundaries: the BFS queue is flat, so layer
// k ends when the head reaches the index the queue had when layer k-1
// finished. tick publishes the per-layer gauges and counter events; the
// bookkeeping itself (one compare per state) always runs so engines can
// report the BFS depth in Stats even without a scope attached.
type layerObs struct {
	scope    obs.Scope
	visited  *obs.Gauge
	frontier *obs.Gauge
	layers   *obs.Gauge
	layer    int
	layerEnd int
}

func newLayerObs(scope obs.Scope, boundary int) *layerObs {
	return &layerObs{
		scope:    scope,
		visited:  scope.Reg.Gauge(obs.MExplicitVisited),
		frontier: scope.Reg.Gauge(obs.MExplicitFrontier),
		layers:   scope.Reg.Gauge(obs.MExplicitLayers),
		layerEnd: boundary,
	}
}

func (lo *layerObs) tick(head, total int) {
	if head != lo.layerEnd {
		return
	}
	lo.layer++
	lo.visited.Set(int64(total))
	lo.frontier.Set(int64(total - lo.layerEnd))
	lo.layers.Set(int64(lo.layer))
	lo.scope.Trace.CounterEvent(obs.CatEngine, obs.MExplicitVisited, int64(total))
	lo.scope.Trace.CounterEvent(obs.CatEngine, obs.MExplicitFrontier, int64(total-lo.layerEnd))
	lo.layerEnd = total
}

// finish publishes the final totals once exploration stops.
func (lo *layerObs) finish(total int) {
	lo.visited.Set(int64(total))
	lo.frontier.Set(0)
	lo.layers.Set(int64(lo.layer))
}

func (o Options) maxStates() int {
	if o.MaxStates == 0 {
		return 5_000_000
	}
	return o.MaxStates
}

// Graph is the result of exhaustive exploration.
type Graph struct {
	Sys       *gcl.System
	States    []gcl.State
	Index     map[string]int32 // state key -> index
	Parents   []int32          // BFS tree parent (or -1 for initial states)
	Edges     [][]int32        // successor adjacency (nil unless StoreEdges)
	InitCount int              // states[0:InitCount] are the initial states
	Deadlocks []int32          // indices of deadlocked states
	Layers    int              // BFS depth: number of completed frontier layers
}

// NumStates returns the number of distinct reachable states.
func (g *Graph) NumStates() int { return len(g.States) }

// Explore performs exhaustive BFS reachability from all initial states.
func Explore(sys *gcl.System, opts Options) (*Graph, error) {
	return ExploreCtx(context.Background(), sys, opts)
}

// ExploreCtx is Explore with cancellation: the BFS frontier loop polls ctx
// every few hundred states and returns ctx.Err() once it is done.
func ExploreCtx(ctx context.Context, sys *gcl.System, opts Options) (*Graph, error) {
	stepper := gcl.NewStepper(sys)
	vars := sys.StateVars()
	g := &Graph{
		Sys:   sys,
		Index: make(map[string]int32, 1<<16),
	}
	limit := opts.maxStates()

	add := func(st gcl.State, parent int32) (int32, bool, error) {
		k := gcl.Key(st, vars)
		if idx, ok := g.Index[k]; ok {
			return idx, false, nil
		}
		if len(g.States) >= limit {
			return 0, false, fmt.Errorf("%w (%d states)", ErrStateLimit, limit)
		}
		idx := int32(len(g.States))
		g.States = append(g.States, st.Clone())
		g.Parents = append(g.Parents, parent)
		if opts.StoreEdges {
			g.Edges = append(g.Edges, nil)
		}
		g.Index[k] = idx
		return idx, true, nil
	}

	var exploreErr error
	stepper.InitStates(func(st gcl.State) bool {
		if _, _, err := add(st, -1); err != nil {
			exploreErr = err
			return false
		}
		return true
	})
	if exploreErr != nil {
		return nil, exploreErr
	}
	g.InitCount = len(g.States)

	lo := newLayerObs(opts.Obs, len(g.States))
	for head := 0; head < len(g.States); head++ {
		lo.tick(head, len(g.States))
		if head%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		cur := g.States[head]
		headIdx := int32(head)
		sawSucc := false
		dead := stepper.Successors(cur, func(next gcl.State) bool {
			sawSucc = true
			idx, _, err := add(next, headIdx)
			if err != nil {
				exploreErr = err
				return false
			}
			if opts.StoreEdges {
				g.Edges[head] = append(g.Edges[head], idx)
			}
			return true
		})
		if exploreErr != nil {
			return nil, exploreErr
		}
		if dead || !sawSucc {
			g.Deadlocks = append(g.Deadlocks, headIdx)
		}
	}
	lo.finish(len(g.States))
	g.Layers = lo.layer
	return g, nil
}

// tracePath reconstructs the BFS path from an initial state to target.
func (g *Graph) tracePath(target int32) *mc.Trace {
	var rev []gcl.State
	for i := target; i != -1; i = g.Parents[i] {
		rev = append(rev, g.States[i])
	}
	states := make([]gcl.State, len(rev))
	for i := range rev {
		states[i] = rev[len(rev)-1-i]
	}
	return mc.NewTrace(states)
}

// CheckInvariant checks G(pred) by exhaustive reachability, stopping at the
// first violation.
func CheckInvariant(sys *gcl.System, prop mc.Property, opts Options) (*mc.Result, error) {
	return CheckInvariantCtx(context.Background(), sys, prop, opts)
}

// CheckInvariantCtx is CheckInvariant with cancellation plumbed into the
// BFS frontier loop.
func CheckInvariantCtx(ctx context.Context, sys *gcl.System, prop mc.Property, opts Options) (*mc.Result, error) {
	if prop.Kind != mc.Invariant {
		return nil, fmt.Errorf("explicit: CheckInvariant on %v property", prop.Kind)
	}
	run := mc.StartRun(opts.Obs, EngineName, prop.Name)
	stepper := gcl.NewStepper(sys)
	vars := sys.StateVars()
	limit := opts.maxStates()

	index := make(map[string]int32, 1<<16)
	var states []gcl.State
	var parents []int32

	var bad int32 = -1
	var exploreErr error
	add := func(st gcl.State, parent int32) bool {
		k := gcl.Key(st, vars)
		if _, ok := index[k]; ok {
			return true
		}
		if len(states) >= limit {
			exploreErr = fmt.Errorf("%w (%d states)", ErrStateLimit, limit)
			return false
		}
		idx := int32(len(states))
		states = append(states, st.Clone())
		parents = append(parents, parent)
		index[k] = idx
		if !gcl.Holds(prop.Pred, st) {
			bad = idx
			return false
		}
		return true
	}

	stepper.InitStates(func(st gcl.State) bool { return add(st, -1) })
	lo := newLayerObs(opts.Obs, len(states))
	for head := 0; head < len(states) && bad == -1 && exploreErr == nil; head++ {
		lo.tick(head, len(states))
		if head%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				run.Abort(err)
				return nil, err
			}
		}
		headIdx := int32(head)
		stepper.Successors(states[head], func(next gcl.State) bool {
			return add(next, headIdx)
		})
	}
	if exploreErr != nil {
		run.Abort(exploreErr)
		return nil, exploreErr
	}
	lo.finish(len(states))

	run.Stats.Visited = len(states)
	run.Stats.Iterations = lo.layer
	run.Stats.Reachable = big.NewInt(int64(len(states)))
	run.Stats.StateBits = stateBits(sys)
	res := &mc.Result{Property: prop, Verdict: mc.Holds}
	if bad >= 0 {
		res.Verdict = mc.Violated
		g := &Graph{Sys: sys, States: states, Parents: parents}
		res.Trace = g.tracePath(bad)
		run.Stats.Reachable = nil // exploration stopped early
	}
	res.Stats = run.Finish(res.Verdict)
	return res, nil
}

// CheckEventually checks F(pred) on all paths (AF pred): it explores the
// full graph, computes EG(¬pred) as a greatest fixpoint (the states with an
// infinite path avoiding pred), and reports a lasso counterexample if an
// initial state lies in that set. Deadlocked states have no infinite paths
// and are therefore not liveness violations by themselves; they are
// reported via the graph in Stats.Visited diagnostics and should be checked
// separately with an invariant.
func CheckEventually(sys *gcl.System, prop mc.Property, opts Options) (*mc.Result, error) {
	return CheckEventuallyCtx(context.Background(), sys, prop, opts)
}

// CheckEventuallyCtx is CheckEventually with cancellation: both the
// exploration and the EG fixpoint sweeps poll ctx.
func CheckEventuallyCtx(ctx context.Context, sys *gcl.System, prop mc.Property, opts Options) (*mc.Result, error) {
	if prop.Kind != mc.Eventually {
		return nil, fmt.Errorf("explicit: CheckEventually on %v property", prop.Kind)
	}
	run := mc.StartRun(opts.Obs, EngineName, prop.Name)
	opts.StoreEdges = true
	g, err := ExploreCtx(ctx, sys, opts)
	if err != nil {
		run.Abort(err)
		return nil, err
	}

	// inSet[i]: state i might have an infinite ¬pred path. Start with all
	// ¬pred states and repeatedly remove states with no successor in the
	// set (greatest fixpoint of EG ¬pred).
	n := len(g.States)
	inSet := make([]bool, n)
	for i, st := range g.States {
		inSet[i] = !gcl.Holds(prop.Pred, st)
	}
	for changed := true; changed; {
		if err := ctx.Err(); err != nil {
			run.Abort(err)
			return nil, err
		}
		changed = false
		for i := range n {
			if !inSet[i] {
				continue
			}
			ok := false
			for _, s := range g.Edges[i] {
				if inSet[s] {
					ok = true
					break
				}
			}
			if !ok {
				inSet[i] = false
				changed = true
			}
		}
	}

	run.Stats.Visited = n
	run.Stats.Iterations = g.Layers
	run.Stats.Reachable = big.NewInt(int64(n))
	run.Stats.StateBits = stateBits(sys)
	res := &mc.Result{Property: prop, Verdict: mc.Holds}

	for i := 0; i < g.InitCount; i++ {
		if !inSet[i] {
			continue
		}
		res.Verdict = mc.Violated
		res.Trace = lassoTrace(g, inSet, int32(i))
		break
	}
	res.Stats = run.Finish(res.Verdict)
	return res, nil
}

// lassoTrace builds a lasso counterexample starting at an initial state
// inside the EG set: a path within the set until a state repeats.
func lassoTrace(g *Graph, inSet []bool, start int32) *mc.Trace {
	var states []gcl.State
	seenAt := make(map[int32]int)
	cur := start
	for {
		if at, ok := seenAt[cur]; ok {
			return &mc.Trace{States: states, LoopsTo: at}
		}
		seenAt[cur] = len(states)
		states = append(states, g.States[cur])
		next := int32(-1)
		for _, s := range g.Edges[cur] {
			if inSet[s] {
				next = s
				break
			}
		}
		if next == -1 {
			// Cannot happen for a true EG fixpoint; fail safe with a
			// finite trace.
			return mc.NewTrace(states)
		}
		cur = next
	}
}

func stateBits(sys *gcl.System) int {
	bits := 0
	for _, v := range sys.StateVars() {
		bits += v.Type.Bits()
	}
	return bits
}
