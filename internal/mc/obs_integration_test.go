package mc_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"ttastartup/internal/mc"
	"ttastartup/internal/mc/bmc"
	"ttastartup/internal/mc/explicit"
	"ttastartup/internal/mc/ic3"
	"ttastartup/internal/mc/symbolic"
	"ttastartup/internal/obs"
)

// TestObsAcrossEngines runs one invariant through all five checkers under a
// shared obs scope and checks the unified reporting contract: every engine
// records Stats.Duration and an engine.runs increment through mc.Run, the
// SAT-backed engines count queries through the same tap that fills
// Stats.SATQueries, and the shared tracer ends up with spans from at least
// the engine, frame, and sat layers in a Chrome export that round-trips
// json.Unmarshal.
func TestObsAcrossEngines(t *testing.T) {
	sys, cases := twoCounters()
	comp := sys.Compile()
	prop := cases[0].prop // invariant that holds: every engine terminates

	scope := obs.Scope{Reg: obs.NewRegistry(), Trace: obs.NewTracer()}

	runs := 0
	check := func(name string, sat bool, run func() (*mc.Result, error)) {
		t.Helper()
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		runs++
		if res.Stats.Duration <= 0 {
			t.Errorf("%s: Stats.Duration = %v, want > 0", name, res.Stats.Duration)
		}
		if got := scope.Reg.Counter(obs.MRuns).Value(); got != int64(runs) {
			t.Errorf("%s: engine.runs = %d, want %d", name, got, runs)
		}
		if sat && res.Stats.SATQueries == 0 {
			t.Errorf("%s: Stats.SATQueries = 0, want > 0", name)
		}
	}

	check("explicit", false, func() (*mc.Result, error) {
		return explicit.CheckInvariant(sys, prop, explicit.Options{Obs: scope})
	})
	check("symbolic", false, func() (*mc.Result, error) {
		eng, err := symbolic.New(comp, symbolic.Options{Obs: scope})
		if err != nil {
			return nil, err
		}
		return eng.CheckInvariant(prop)
	})
	check("bmc", true, func() (*mc.Result, error) {
		return bmc.CheckInvariant(comp, prop, bmc.Options{MaxDepth: 10, Obs: scope})
	})
	check("induction", true, func() (*mc.Result, error) {
		return bmc.CheckInvariantInduction(comp, prop,
			bmc.InductionOptions{MaxK: 60, SimplePath: true, Obs: scope})
	})
	check("ic3", true, func() (*mc.Result, error) {
		return ic3.CheckInvariant(comp, prop, ic3.Options{Obs: scope})
	})

	// The registry totals must match what the engines reported per-run.
	if q := scope.Reg.Counter(obs.MSATQueries).Value(); q == 0 {
		t.Error("sat.queries = 0 after three SAT-engine runs")
	}
	if h := scope.Reg.Histogram(obs.MRunMS).Count(); h != int64(runs) {
		t.Errorf("engine.run_ms histogram count = %d, want %d", h, runs)
	}

	// Chrome export: valid JSON with spans from ≥ 3 distinct layers.
	var buf bytes.Buffer
	if err := scope.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export does not round-trip: %v", err)
	}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		cats[ev.Cat] = true
	}
	for _, want := range []string{obs.CatEngine, obs.CatFrame, obs.CatSAT} {
		if !cats[want] {
			t.Errorf("trace is missing %q spans (have %v)", want, cats)
		}
	}
}

// BenchmarkIC3ObsOff and BenchmarkIC3ObsOn bound the end-to-end cost of
// the instrumentation on a full IC3 proof: the off path must stay within
// the noise of the pre-obs engine (nil-receiver fast path), and the on
// path shows what a fully recorded run costs.
func BenchmarkIC3ObsOff(b *testing.B) {
	benchmarkIC3(b, obs.Scope{})
}

func BenchmarkIC3ObsOn(b *testing.B) {
	benchmarkIC3(b, obs.Scope{Reg: obs.NewRegistry(), Trace: obs.NewTracer()})
}

func benchmarkIC3(b *testing.B, scope obs.Scope) {
	sys, cases := twoCounters()
	comp := sys.Compile()
	prop := cases[0].prop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ic3.CheckInvariant(comp, prop, ic3.Options{Obs: scope}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestObsDisabledIsNoOp checks the disabled path: a zero Scope routed
// through every engine must not panic, must still fill Stats, and must
// leave nothing behind to export.
func TestObsDisabledIsNoOp(t *testing.T) {
	sys, cases := twoCounters()
	comp := sys.Compile()
	prop := cases[0].prop

	res, err := ic3.CheckInvariant(comp, prop, ic3.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Duration <= 0 || res.Stats.SATQueries == 0 {
		t.Errorf("zero scope lost stats: duration=%v queries=%d",
			res.Stats.Duration, res.Stats.SATQueries)
	}

	var scope obs.Scope
	if scope.Enabled() {
		t.Error("zero Scope reports Enabled")
	}
	// Nil-receiver fast paths must all be safe.
	scope.Reg.Counter("x").Inc()
	scope.Reg.Gauge("x").Set(1)
	scope.Reg.Histogram("x").Observe(1)
	sp := scope.Trace.Start(obs.CatEngine, "nothing")
	sp.Attr("k", "v").End()
	if n := scope.Trace.EventCount(); n != 0 {
		t.Errorf("nil tracer recorded %d events", n)
	}
}
