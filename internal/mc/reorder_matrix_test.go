package mc_test

import (
	"fmt"
	"testing"

	"ttastartup/internal/bdd"
	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
	"ttastartup/internal/mc/symbolic"
	"ttastartup/internal/tta/original"
	"ttastartup/internal/tta/startup"
)

// TestReorderVerdictMatrix checks that dynamic variable reordering is
// observationally invisible: over the shipped model matrix (both
// topologies, big bang on and off, fault degrees 1-3, safety and
// liveness), the symbolic engine must return the identical verdict,
// reachable-state count, and counterexample length with reordering off
// and on. The reorder-on runs use an aggressively low trigger threshold
// so sifting fires many times even on these small configurations.
func TestReorderVerdictMatrix(t *testing.T) {
	type cell struct {
		name string
		sys  *gcl.System
		prop mc.Property
	}
	var cells []cell

	for deg := 1; deg <= 3; deg++ {
		m, err := original.Build(original.Config{N: 3, FaultyNode: 1, FaultDegree: deg, DeltaInit: 2})
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells,
			cell{fmt.Sprintf("bus/deg%d/safety", deg), m.Sys, m.Safety()},
			cell{fmt.Sprintf("bus/deg%d/liveness", deg), m.Sys, m.Liveness()},
		)
	}
	hubOn := startup.DefaultConfig(3)
	hubOn.DeltaInit = 2
	hubOnModel, err := startup.Build(hubOn)
	if err != nil {
		t.Fatal(err)
	}
	cells = append(cells, cell{"hub/big-bang-on/safety", hubOnModel.Sys, hubOnModel.Safety()})
	hubOff := startup.DefaultConfig(3).WithFaultyHub(0)
	hubOff.DeltaInit = 2
	hubOff.DisableBigBang = true
	hubOffModel, err := startup.Build(hubOff)
	if err != nil {
		t.Fatal(err)
	}
	cells = append(cells, cell{"hub/big-bang-off/safety", hubOffModel.Sys, hubOffModel.Safety()})

	check := func(sys *gcl.System, prop mc.Property, opts symbolic.Options) (*mc.Result, error) {
		eng, err := symbolic.New(sys.Compile(), opts)
		if err != nil {
			return nil, err
		}
		if prop.Kind == mc.Eventually {
			return eng.CheckEventually(prop)
		}
		return eng.CheckInvariant(prop)
	}

	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			off, err := check(c.sys, c.prop, symbolic.Options{})
			if err != nil {
				t.Fatal(err)
			}
			on, err := check(c.sys, c.prop, symbolic.Options{
				BDD: bdd.Config{AutoReorder: true, ReorderStart: 1 << 9},
			})
			if err != nil {
				t.Fatal(err)
			}
			if off.Verdict != on.Verdict {
				t.Fatalf("verdict changed: %v without reordering, %v with", off.Verdict, on.Verdict)
			}
			if off.Stats.Reachable != nil && on.Stats.Reachable != nil &&
				off.Stats.Reachable.Cmp(on.Stats.Reachable) != 0 {
				t.Fatalf("reachable count changed: %v without reordering, %v with",
					off.Stats.Reachable, on.Stats.Reachable)
			}
			if (off.Trace == nil) != (on.Trace == nil) {
				t.Fatalf("trace presence changed across reordering")
			}
			// Invariant traces are breadth-first layered, so their length
			// (first violating depth) is canonical. Liveness lassos are
			// extracted by cube-picking inside the cycle and may legally
			// take a different (equally valid) shape under another order.
			if off.Trace != nil && c.prop.Kind == mc.Invariant && off.Trace.Len() != on.Trace.Len() {
				t.Fatalf("trace length changed: %d without reordering, %d with",
					off.Trace.Len(), on.Trace.Len())
			}
			if off.Trace != nil {
				verifyTrace(t, c.sys, c.prop, off.Trace)
				verifyTrace(t, c.sys, c.prop, on.Trace)
			}
		})
	}
}
