package mc_test

import (
	"math/big"
	"testing"

	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
	"ttastartup/internal/mc/bmc"
	"ttastartup/internal/mc/explicit"
	"ttastartup/internal/mc/ic3"
	"ttastartup/internal/mc/symbolic"
)

// testSystem bundles a system with interesting properties of known truth.
type testSystem struct {
	name  string
	build func() (*gcl.System, []propCase)
}

type propCase struct {
	prop  mc.Property
	holds bool
}

// twoCounters: two modules race; a collision flag is set when both hit the
// same value via a nondeterministic choice — exercises choice vars, cross-
// module primed reads, invariants, and liveness.
func twoCounters() (*gcl.System, []propCase) {
	sys := gcl.NewSystem("twocounters")
	typ := gcl.IntType("c", 6)
	a := sys.Module("a")
	b := sys.Module("b")
	av := a.Var("x", typ, gcl.InitConst(0))
	bv := b.Var("y", typ, gcl.InitConst(1))
	// a counts up, saturating at 5; b copies a's primed value or holds.
	a.Cmd("inc", gcl.Lt(gcl.X(av), gcl.C(typ, 5)), gcl.Set(av, gcl.AddSat(gcl.X(av), 1)))
	a.Cmd("top", gcl.Eq(gcl.X(av), gcl.C(typ, 5)))
	b.Cmd("copy", gcl.B(true), gcl.Set(bv, gcl.XN(av)))
	b.Cmd("hold", gcl.Lt(gcl.X(bv), gcl.C(typ, 3)))
	sys.MustFinalize()

	pInv := mc.Property{Name: "y-le-x-plus1", Kind: mc.Invariant,
		Pred: gcl.Le(gcl.X(bv), gcl.AddSat(gcl.X(av), 1))}
	pBad := mc.Property{Name: "never-both-5", Kind: mc.Invariant,
		Pred: gcl.Not(gcl.And(gcl.Eq(gcl.X(av), gcl.C(typ, 5)), gcl.Eq(gcl.X(bv), gcl.C(typ, 5))))}
	pLive := mc.Property{Name: "x-reaches-5", Kind: mc.Eventually,
		Pred: gcl.Eq(gcl.X(av), gcl.C(typ, 5))}
	pLiveBad := mc.Property{Name: "y-reaches-5", Kind: mc.Eventually,
		Pred: gcl.Eq(gcl.X(bv), gcl.C(typ, 5))}
	return sys, []propCase{
		{pInv, true},
		{pBad, false},     // b can copy a=5
		{pLive, true},     // a must keep incrementing
		{pLiveBad, false}, // b may hold at y<3 forever
	}
}

// tokenRing: three nodes pass a token; exercises enum types and AddMod.
func tokenRing() (*gcl.System, []propCase) {
	sys := gcl.NewSystem("ring")
	pos := gcl.IntType("pos", 3)
	m := sys.Module("ring")
	tok := m.Var("tok", pos, gcl.InitSet(0, 1))
	cnt := m.Var("cnt", gcl.IntType("cnt", 8), gcl.InitConst(0))
	m.Cmd("pass", gcl.B(true),
		gcl.Set(tok, gcl.AddMod(gcl.X(tok), 1)),
		gcl.Set(cnt, gcl.AddSat(gcl.X(cnt), 1)))
	sys.MustFinalize()
	return sys, []propCase{
		{mc.Property{Name: "tok-in-range", Kind: mc.Invariant,
			Pred: gcl.Le(gcl.X(tok), gcl.C(pos, 2))}, true},
		{mc.Property{Name: "cnt-saturates", Kind: mc.Eventually,
			Pred: gcl.Eq(gcl.X(cnt), gcl.C(gcl.IntType("cnt", 8), 7))}, true},
		{mc.Property{Name: "tok-avoids-2", Kind: mc.Invariant,
			Pred: gcl.Ne(gcl.X(tok), gcl.C(pos, 2))}, false},
	}
}

// fallbackFlag: fallback fires after a bounded run and raises a flag.
func fallbackFlag() (*gcl.System, []propCase) {
	sys := gcl.NewSystem("fb")
	typ := gcl.IntType("c", 5)
	m := sys.Module("m")
	v := m.Var("v", typ, gcl.InitConst(0))
	flag := m.Bool("flag", gcl.InitConst(0))
	m.Cmd("inc", gcl.Lt(gcl.X(v), gcl.C(typ, 4)), gcl.Set(v, gcl.AddSat(gcl.X(v), 1)))
	m.Fallback("raise", gcl.SetC(flag, 1))
	sys.MustFinalize()
	return sys, []propCase{
		{mc.Property{Name: "flag-eventually", Kind: mc.Eventually,
			Pred: gcl.Eq(gcl.X(flag), gcl.B(true))}, true},
		{mc.Property{Name: "flag-never", Kind: mc.Invariant,
			Pred: gcl.Eq(gcl.X(flag), gcl.B(false))}, false},
	}
}

func systems() []testSystem {
	return []testSystem{
		{"twoCounters", twoCounters},
		{"tokenRing", tokenRing},
		{"fallbackFlag", fallbackFlag},
	}
}

// verifyTrace replays a finite counterexample trace against the stepper and
// checks that the final state violates the invariant.
func verifyTrace(t *testing.T, sys *gcl.System, prop mc.Property, tr *mc.Trace) {
	t.Helper()
	if tr == nil || tr.Len() == 0 {
		t.Fatal("missing counterexample trace")
	}
	stepper := gcl.NewStepper(sys)
	vars := sys.StateVars()

	// First state must be initial.
	foundInit := false
	first := gcl.Key(tr.States[0], vars)
	stepper.InitStates(func(st gcl.State) bool {
		if gcl.Key(st, vars) == first {
			foundInit = true
			return false
		}
		return true
	})
	if !foundInit {
		t.Errorf("trace does not start in an initial state: %s", sys.FormatState(tr.States[0]))
	}

	// Each step must be a valid transition.
	for i := 0; i+1 < tr.Len(); i++ {
		want := gcl.Key(tr.States[i+1], vars)
		ok := false
		stepper.Successors(tr.States[i], func(next gcl.State) bool {
			if gcl.Key(next, vars) == want {
				ok = true
				return false
			}
			return true
		})
		if !ok {
			t.Fatalf("trace step %d is not a valid transition", i)
		}
	}

	if prop.Kind == mc.Invariant {
		if gcl.Holds(prop.Pred, tr.States[tr.Len()-1]) {
			t.Error("final trace state does not violate the invariant")
		}
	}
	if prop.Kind == mc.Eventually && tr.LoopsTo >= 0 {
		// No state on the lasso may satisfy pred.
		for i, st := range tr.States {
			if gcl.Holds(prop.Pred, st) {
				t.Errorf("liveness lasso state %d satisfies pred", i)
			}
		}
		// The loop must close: last state must have the loop target as a successor.
		want := gcl.Key(tr.States[tr.LoopsTo], vars)
		ok := false
		stepper.Successors(tr.States[tr.Len()-1], func(next gcl.State) bool {
			if gcl.Key(next, vars) == want {
				ok = true
				return false
			}
			return true
		})
		if !ok {
			t.Error("lasso does not close")
		}
	}
}

// TestEnginesAgree runs every property through explicit, symbolic, and
// (for invariants) the three SAT engines — bounded, k-induction, IC3 —
// and demands consistent verdicts plus valid counterexamples.
func TestEnginesAgree(t *testing.T) {
	for _, ts := range systems() {
		t.Run(ts.name, func(t *testing.T) {
			sys, cases := ts.build()
			comp := sys.Compile()
			eng, err := symbolic.New(comp, symbolic.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, pc := range cases {
				var expRes, symRes *mc.Result
				var err error
				switch pc.prop.Kind {
				case mc.Invariant:
					expRes, err = explicit.CheckInvariant(sys, pc.prop, explicit.Options{})
					if err != nil {
						t.Fatal(err)
					}
					symRes, err = eng.CheckInvariant(pc.prop)
					if err != nil {
						t.Fatal(err)
					}
					bmcRes, err := bmc.CheckInvariant(comp, pc.prop, bmc.Options{MaxDepth: 25})
					if err != nil {
						t.Fatal(err)
					}
					if pc.holds && bmcRes.Verdict != mc.HoldsBounded {
						t.Errorf("%s: bmc verdict %v, want holds-bounded", pc.prop.Name, bmcRes.Verdict)
					}
					if !pc.holds {
						if bmcRes.Verdict != mc.Violated {
							t.Errorf("%s: bmc verdict %v, want violated", pc.prop.Name, bmcRes.Verdict)
						} else {
							verifyTrace(t, sys, pc.prop, bmcRes.Trace)
						}
					}
					// k-induction with simple-path constraints is complete
					// on finite systems: exact verdicts, like IC3 below.
					indRes, err := bmc.CheckInvariantInduction(comp, pc.prop,
						bmc.InductionOptions{MaxK: 60, SimplePath: true})
					if err != nil {
						t.Fatal(err)
					}
					icRes, err := ic3.CheckInvariant(comp, pc.prop, ic3.Options{})
					if err != nil {
						t.Fatal(err)
					}
					for _, r := range []*mc.Result{indRes, icRes} {
						if pc.holds && r.Verdict != mc.Holds {
							t.Errorf("%s: %s verdict %v, want holds (unbounded)",
								pc.prop.Name, r.Stats.Engine, r.Verdict)
						}
						if !pc.holds {
							if r.Verdict != mc.Violated {
								t.Errorf("%s: %s verdict %v, want violated",
									pc.prop.Name, r.Stats.Engine, r.Verdict)
							} else {
								verifyTrace(t, sys, pc.prop, r.Trace)
							}
						}
					}
				case mc.Eventually:
					expRes, err = explicit.CheckEventually(sys, pc.prop, explicit.Options{})
					if err != nil {
						t.Fatal(err)
					}
					symRes, err = eng.CheckEventually(pc.prop)
					if err != nil {
						t.Fatal(err)
					}
					// The SAT engines decide eventualities through the
					// liveness-to-safety product: exact verdicts, and
					// refutations come back as concrete source lassos.
					indRes, err := bmc.CheckEventuallyInduction(sys, pc.prop,
						bmc.InductionOptions{MaxK: 60, SimplePath: true})
					if err != nil {
						t.Fatal(err)
					}
					icRes, err := ic3.CheckEventually(sys, pc.prop, ic3.Options{})
					if err != nil {
						t.Fatal(err)
					}
					// Plain BMC is complete here too: the recurrence-diameter
					// fallback upgrades holds-bounded to a definitive holds
					// once the simple-path query closes.
					bmcRes, err := bmc.CheckEventuallyRefute(comp, pc.prop, bmc.Options{MaxDepth: 80})
					if err != nil {
						t.Fatal(err)
					}
					for _, r := range []*mc.Result{indRes, icRes, bmcRes} {
						if pc.holds && r.Verdict != mc.Holds {
							t.Errorf("%s: %s verdict %v, want holds (unbounded)",
								pc.prop.Name, r.Stats.Engine, r.Verdict)
						}
						if !pc.holds {
							if r.Verdict != mc.Violated {
								t.Errorf("%s: %s verdict %v, want violated",
									pc.prop.Name, r.Stats.Engine, r.Verdict)
							} else if r.Trace.LoopsTo < 0 {
								t.Errorf("%s: %s refutation lacks a lasso back-edge",
									pc.prop.Name, r.Stats.Engine)
							} else {
								verifyTrace(t, sys, pc.prop, r.Trace)
							}
						}
					}
				}
				for _, r := range []*mc.Result{expRes, symRes} {
					wantV := mc.Holds
					if !pc.holds {
						wantV = mc.Violated
					}
					if r.Verdict != wantV {
						t.Errorf("%s [%s]: verdict %v, want %v", pc.prop.Name, r.Stats.Engine, r.Verdict, wantV)
						continue
					}
					if !pc.holds {
						verifyTrace(t, sys, pc.prop, r.Trace)
					}
				}
			}
		})
	}
}

// TestStateCountsAgree compares explicit and symbolic reachable-state
// counts on every test system.
func TestStateCountsAgree(t *testing.T) {
	for _, ts := range systems() {
		t.Run(ts.name, func(t *testing.T) {
			sys, _ := ts.build()
			g, err := explicit.Explore(sys, explicit.Options{})
			if err != nil {
				t.Fatal(err)
			}
			eng, err := symbolic.New(sys.Compile(), symbolic.Options{})
			if err != nil {
				t.Fatal(err)
			}
			count, err := eng.CountStates()
			if err != nil {
				t.Fatal(err)
			}
			if count.Cmp(big.NewInt(int64(g.NumStates()))) != 0 {
				t.Errorf("symbolic count %v != explicit count %d", count, g.NumStates())
			}
		})
	}
}

// TestDeadlockFreedom checks the symbolic deadlock detector against a
// system with a known deadlock and one without.
func TestDeadlockFreedom(t *testing.T) {
	mk := func(withEscape bool) *gcl.System {
		sys := gcl.NewSystem("dl")
		typ := gcl.IntType("c", 4)
		m := sys.Module("m")
		v := m.Var("v", typ, gcl.InitConst(0))
		m.Cmd("inc", gcl.Lt(gcl.X(v), gcl.C(typ, 2)), gcl.Set(v, gcl.AddSat(gcl.X(v), 1)))
		if withEscape {
			m.Cmd("spin", gcl.Eq(gcl.X(v), gcl.C(typ, 2)))
		}
		sys.MustFinalize()
		return sys
	}
	engGood, err := symbolic.New(mk(true).Compile(), symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engGood.CheckDeadlockFree()
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Holds {
		t.Errorf("escape system reported deadlock")
	}
	engBad, err := symbolic.New(mk(false).Compile(), symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err = engBad.CheckDeadlockFree()
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Violated {
		t.Errorf("deadlocking system reported deadlock-free")
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Error("deadlock counterexample missing")
	}
}

// TestExplicitGraphDeadlocks checks deadlock reporting in exploration.
func TestExplicitGraphDeadlocks(t *testing.T) {
	sys := gcl.NewSystem("dl2")
	typ := gcl.IntType("c", 4)
	m := sys.Module("m")
	v := m.Var("v", typ, gcl.InitConst(0))
	m.Cmd("inc", gcl.Lt(gcl.X(v), gcl.C(typ, 3)), gcl.Set(v, gcl.AddSat(gcl.X(v), 1)))
	sys.MustFinalize()
	g, err := explicit.Explore(sys, explicit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 4 {
		t.Errorf("states = %d, want 4", g.NumStates())
	}
	if len(g.Deadlocks) != 1 {
		t.Errorf("deadlocks = %d, want 1", len(g.Deadlocks))
	}
}

// TestStateLimit exercises the exploration cap.
func TestStateLimit(t *testing.T) {
	sys := gcl.NewSystem("big")
	typ := gcl.IntType("c", 100)
	m := sys.Module("m")
	v := m.Var("v", typ, gcl.InitConst(0))
	m.Cmd("inc", gcl.B(true), gcl.Set(v, gcl.AddMod(gcl.X(v), 1)))
	sys.MustFinalize()
	_, err := explicit.Explore(sys, explicit.Options{MaxStates: 10})
	if err == nil {
		t.Fatal("expected state-limit error")
	}
}

// TestBMCFindsMinimalDepth verifies the counterexample is shallowest.
func TestBMCFindsMinimalDepth(t *testing.T) {
	sys := gcl.NewSystem("depth")
	typ := gcl.IntType("c", 16)
	m := sys.Module("m")
	v := m.Var("v", typ, gcl.InitConst(0))
	m.Cmd("inc", gcl.B(true), gcl.Set(v, gcl.AddSat(gcl.X(v), 1)))
	sys.MustFinalize()
	prop := mc.Property{Name: "v-lt-7", Kind: mc.Invariant,
		Pred: gcl.Lt(gcl.X(v), gcl.C(typ, 7))}
	res, err := bmc.CheckInvariant(sys.Compile(), prop, bmc.Options{MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Violated {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Trace.Len() != 8 { // states 0..7
		t.Errorf("trace length %d, want 8", res.Trace.Len())
	}
	if res.Stats.Iterations != 7 {
		t.Errorf("violation depth %d, want 7", res.Stats.Iterations)
	}
}

// TestSymbolicTraceIsShortest: BFS layers must give a shortest trace.
func TestSymbolicTraceIsShortest(t *testing.T) {
	sys := gcl.NewSystem("short")
	typ := gcl.IntType("c", 16)
	m := sys.Module("m")
	v := m.Var("v", typ, gcl.InitConst(0))
	m.Cmd("inc", gcl.B(true), gcl.Set(v, gcl.AddSat(gcl.X(v), 1)))
	m.Cmd("jump", gcl.B(true), gcl.Set(v, gcl.AddSat(gcl.X(v), 3)))
	sys.MustFinalize()
	eng, err := symbolic.New(sys.Compile(), symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prop := mc.Property{Name: "v-lt-9", Kind: mc.Invariant,
		Pred: gcl.Lt(gcl.X(v), gcl.C(typ, 9))}
	res, err := eng.CheckInvariant(prop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Violated {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Trace.Len() != 4 { // 0 -> 3 -> 6 -> 9
		t.Errorf("trace length %d, want 4", res.Trace.Len())
	}
	verifyTrace(t, sys, prop, res.Trace)
}
