package mc_test

import (
	"testing"

	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
	"ttastartup/internal/mc/bmc"
	"ttastartup/internal/mc/explicit"
	"ttastartup/internal/mc/ic3"
	"ttastartup/internal/mc/symbolic"
	"ttastartup/internal/tta/original"
	"ttastartup/internal/tta/startup"
)

// TestTTAEnginesAgree runs the shipped TTA models — both topologies, big
// bang on and off — through all five engines on small configurations and
// demands consistent verdicts. On the bus topology every prover is exact:
// symbolic, explicit, IC3, and k-induction must return the same unbounded
// verdict, and every refutation must replay. The hub safety lemma is not
// k-inductive at small k and IC3 needs minutes to close it (DESIGN.md), so
// on the hub holds-case the SAT provers run depth/frame-capped and must
// merely not contradict the exact engines.
func TestTTAEnginesAgree(t *testing.T) {
	type ttaCase struct {
		name     string
		sys      *gcl.System
		prop     mc.Property
		holds    bool
		exactSAT bool // demand unbounded verdicts from induction and IC3
		slow     bool // skipped with -short
	}

	busCase := func(deg int, holds bool) ttaCase {
		m, err := original.Build(original.Config{N: 3, FaultyNode: 1, FaultDegree: deg, DeltaInit: 2})
		if err != nil {
			t.Fatal(err)
		}
		return ttaCase{
			name: "bus/deg" + string(rune('0'+deg)) + "-safety",
			sys:  m.Sys, prop: m.Safety(), holds: holds, exactSAT: true,
		}
	}

	hubOn := startup.DefaultConfig(3)
	hubOn.DeltaInit = 2
	hubOnModel, err := startup.Build(hubOn)
	if err != nil {
		t.Fatal(err)
	}
	hubOff := startup.DefaultConfig(3).WithFaultyHub(0)
	hubOff.DeltaInit = 2
	hubOff.DisableBigBang = true
	hubOffModel, err := startup.Build(hubOff)
	if err != nil {
		t.Fatal(err)
	}

	cases := []ttaCase{
		busCase(1, true),
		busCase(3, false),
		{name: "hub/big-bang-on-safety", sys: hubOnModel.Sys, prop: hubOnModel.Safety(),
			holds: true, exactSAT: false},
		{name: "hub/big-bang-off-clique", sys: hubOffModel.Sys, prop: hubOffModel.Safety(),
			holds: false, exactSAT: true, slow: true},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("IC3 needs tens of seconds on this configuration")
			}
			comp := tc.sys.Compile()
			depth := 20

			expRes, err := explicit.CheckInvariant(tc.sys, tc.prop, explicit.Options{})
			if err != nil {
				t.Fatal(err)
			}
			eng, err := symbolic.New(comp, symbolic.Options{})
			if err != nil {
				t.Fatal(err)
			}
			symRes, err := eng.CheckInvariant(tc.prop)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range []*mc.Result{expRes, symRes} {
				want := mc.Holds
				if !tc.holds {
					want = mc.Violated
				}
				if r.Verdict != want {
					t.Fatalf("[%s] verdict %v, want %v", r.Stats.Engine, r.Verdict, want)
				}
				if !tc.holds {
					verifyTrace(t, tc.sys, tc.prop, r.Trace)
				}
			}

			bmcRes, err := bmc.CheckInvariant(comp, tc.prop, bmc.Options{MaxDepth: depth})
			if err != nil {
				t.Fatal(err)
			}
			indOpts := bmc.InductionOptions{MaxK: depth, SimplePath: tc.exactSAT}
			if !tc.exactSAT {
				indOpts.MaxK = 5 // capped: agreement means "does not refute"
			}
			indRes, err := bmc.CheckInvariantInduction(comp, tc.prop, indOpts)
			if err != nil {
				t.Fatal(err)
			}
			icOpts := ic3.Options{}
			if !tc.exactSAT {
				icOpts.MaxFrames = 5
			}
			icRes, err := ic3.CheckInvariant(comp, tc.prop, icOpts)
			if err != nil {
				t.Fatal(err)
			}

			for i, r := range []*mc.Result{bmcRes, indRes, icRes} {
				name := []string{"bmc", "induction", "ic3"}[i]
				t.Run(name, func(t *testing.T) {
					if tc.holds && r.Verdict == mc.Violated {
						t.Fatalf("[%s] refuted a lemma the exact engines prove", name)
					}
					if !tc.holds {
						if r.Verdict != mc.Violated {
							t.Errorf("[%s] verdict %v, want violated", name, r.Verdict)
						} else {
							verifyTrace(t, tc.sys, tc.prop, r.Trace)
						}
					}
				})
			}
			if tc.holds && tc.exactSAT {
				if indRes.Verdict != mc.Holds {
					t.Errorf("[induction] verdict %v, want an unbounded proof", indRes.Verdict)
				}
				if icRes.Verdict != mc.Holds {
					t.Errorf("[ic3] verdict %v, want an unbounded proof", icRes.Verdict)
				}
				if icRes.Stats.Iterations == 0 || icRes.Stats.SATQueries == 0 {
					t.Errorf("[ic3] missing frame/query stats: %+v", icRes.Stats)
				}
			}
		})
	}
}
