package mc_test

import (
	"testing"

	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
	"ttastartup/internal/mc/bmc"
	"ttastartup/internal/mc/explicit"
	"ttastartup/internal/mc/ic3"
	"ttastartup/internal/mc/symbolic"
	"ttastartup/internal/tta/original"
	"ttastartup/internal/tta/startup"
)

// TestTTAEnginesAgree runs the shipped TTA models — both topologies, big
// bang on and off, safety and liveness lemmas — through all five engines on
// small configurations and demands consistent verdicts. On the bus topology
// every prover is exact: symbolic, explicit, IC3, and k-induction must
// return the same unbounded verdict, and every refutation must replay
// concretely, including the lasso back-edge on liveness counterexamples.
// The hub safety lemma is not k-inductive at small k and IC3 needs minutes
// to close it (DESIGN.md), so on the hub holds-case the SAT provers run
// depth/frame-capped and must merely not contradict the exact engines.
// Liveness on the SAT engines goes through the l2s product (internal/gcl/l2s):
// a Violated verdict there must come back as a concrete lasso on the SOURCE
// system, which is exactly what verifyTrace replays.
func TestTTAEnginesAgree(t *testing.T) {
	type ttaCase struct {
		name     string
		sys      *gcl.System
		prop     mc.Property
		holds    bool
		exactInd bool // demand an unbounded verdict from k-induction
		exactIC3 bool // demand an unbounded verdict from IC3
		slow     bool // skipped with -short
	}

	busModel := func(deg int) *original.Model {
		m, err := original.Build(original.Config{N: 3, FaultyNode: 1, FaultDegree: deg, DeltaInit: 2})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	bus1 := busModel(1)
	bus3 := busModel(3)

	hubOn := startup.DefaultConfig(3)
	hubOn.DeltaInit = 2
	hubOnModel, err := startup.Build(hubOn)
	if err != nil {
		t.Fatal(err)
	}
	hubOff := startup.DefaultConfig(3).WithFaultyHub(0)
	hubOff.DeltaInit = 2
	hubOff.DisableBigBang = true
	hubOffModel, err := startup.Build(hubOff)
	if err != nil {
		t.Fatal(err)
	}

	cases := []ttaCase{
		{name: "bus/deg1-safety", sys: bus1.Sys, prop: bus1.Safety(),
			holds: true, exactInd: true, exactIC3: true},
		{name: "bus/deg1-liveness", sys: bus1.Sys, prop: bus1.Liveness(),
			holds: true, exactInd: true, exactIC3: true},
		{name: "bus/deg3-safety", sys: bus3.Sys, prop: bus3.Safety(),
			holds: false, exactInd: true, exactIC3: true},
		{name: "bus/deg3-liveness", sys: bus3.Sys, prop: bus3.Liveness(),
			holds: false, exactInd: true, exactIC3: true},
		{name: "hub/big-bang-on-safety", sys: hubOnModel.Sys, prop: hubOnModel.Safety(),
			holds: true},
		// IC3 proves the hub liveness lemma on the l2s product in about a
		// minute (23 frames); k-induction does not close it by k=40, so the
		// induction leg runs capped and must merely not contradict.
		{name: "hub/big-bang-on-liveness", sys: hubOnModel.Sys, prop: hubOnModel.Liveness(),
			holds: true, exactIC3: true, slow: true},
		{name: "hub/big-bang-off-clique", sys: hubOffModel.Sys, prop: hubOffModel.Safety(),
			holds: false, exactInd: true, exactIC3: true, slow: true},
		{name: "hub/big-bang-off-clique-liveness", sys: hubOffModel.Sys, prop: hubOffModel.Liveness(),
			holds: false, exactInd: true, exactIC3: true, slow: true},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && (testing.Short() || raceEnabled) {
				t.Skip("IC3 needs tens of seconds on this configuration (minutes under the race detector)")
			}
			comp := tc.sys.Compile()
			depth := 20
			eventually := tc.prop.Kind == mc.Eventually

			var expRes *mc.Result
			if eventually {
				expRes, err = explicit.CheckEventually(tc.sys, tc.prop, explicit.Options{})
			} else {
				expRes, err = explicit.CheckInvariant(tc.sys, tc.prop, explicit.Options{})
			}
			if err != nil {
				t.Fatal(err)
			}
			eng, err := symbolic.New(comp, symbolic.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var symRes *mc.Result
			if eventually {
				symRes, err = eng.CheckEventually(tc.prop)
			} else {
				symRes, err = eng.CheckInvariant(tc.prop)
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range []*mc.Result{expRes, symRes} {
				want := mc.Holds
				if !tc.holds {
					want = mc.Violated
				}
				if r.Verdict != want {
					t.Fatalf("[%s] verdict %v, want %v", r.Stats.Engine, r.Verdict, want)
				}
				if !tc.holds {
					verifyTrace(t, tc.sys, tc.prop, r.Trace)
				}
			}

			var bmcRes *mc.Result
			if eventually {
				bmcRes, err = bmc.CheckEventuallyRefute(comp, tc.prop, bmc.Options{MaxDepth: depth})
			} else {
				bmcRes, err = bmc.CheckInvariant(comp, tc.prop, bmc.Options{MaxDepth: depth})
			}
			if err != nil {
				t.Fatal(err)
			}
			indOpts := bmc.InductionOptions{MaxK: depth, SimplePath: tc.exactInd}
			if !tc.exactInd {
				indOpts.MaxK = 5 // capped: agreement means "does not refute"
			}
			var indRes *mc.Result
			if eventually {
				indRes, err = bmc.CheckEventuallyInduction(tc.sys, tc.prop, indOpts)
			} else {
				indRes, err = bmc.CheckInvariantInduction(comp, tc.prop, indOpts)
			}
			if err != nil {
				t.Fatal(err)
			}
			icOpts := ic3.Options{}
			if !tc.exactIC3 {
				icOpts.MaxFrames = 5
			}
			var icRes *mc.Result
			if eventually {
				icRes, err = ic3.CheckEventually(tc.sys, tc.prop, icOpts)
			} else {
				icRes, err = ic3.CheckInvariant(comp, tc.prop, icOpts)
			}
			if err != nil {
				t.Fatal(err)
			}

			for i, r := range []*mc.Result{bmcRes, indRes, icRes} {
				name := []string{"bmc", "induction", "ic3"}[i]
				t.Run(name, func(t *testing.T) {
					if tc.holds && r.Verdict == mc.Violated {
						t.Fatalf("[%s] refuted a lemma the exact engines prove", name)
					}
					if !tc.holds {
						if r.Verdict != mc.Violated {
							t.Errorf("[%s] verdict %v, want violated", name, r.Verdict)
							return
						}
						if eventually && r.Trace.LoopsTo < 0 {
							t.Fatalf("[%s] liveness refutation without a lasso back-edge", name)
						}
						verifyTrace(t, tc.sys, tc.prop, r.Trace)
					}
				})
			}
			if tc.holds && tc.exactInd {
				if indRes.Verdict != mc.Holds {
					t.Errorf("[induction] verdict %v, want an unbounded proof", indRes.Verdict)
				}
			}
			if tc.holds && tc.exactIC3 {
				if icRes.Verdict != mc.Holds {
					t.Errorf("[ic3] verdict %v, want an unbounded proof", icRes.Verdict)
				}
				if icRes.Stats.Iterations == 0 || icRes.Stats.SATQueries == 0 {
					t.Errorf("[ic3] missing frame/query stats: %+v", icRes.Stats)
				}
			}
		})
	}
}
