// Package symbolic implements a BDD-based symbolic model checker over
// compiled gcl systems: frontier-based reachability with a conjunctively
// partitioned transition relation and early quantification, invariant
// checking with backward counterexample reconstruction, inevitability
// (AF p) via an EG greatest fixpoint, and exact reachable-state counting.
// It plays the role SAL's symbolic engine plays in the paper.
package symbolic

import (
	"context"
	"fmt"
	"math/big"
	"sort"

	"ttastartup/internal/bdd"
	"ttastartup/internal/circuit"
	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
	"ttastartup/internal/obs"
)

// EngineName identifies this engine in Stats.
const EngineName = "symbolic"

// Options tunes the engine.
type Options struct {
	// BDD configures the node manager.
	BDD bdd.Config
	// MaxIterations caps fixpoint iterations (0 = default 100,000).
	MaxIterations int
	// NoTrace disables counterexample layer retention (saves memory on
	// large proofs where only the verdict matters).
	NoTrace bool
	// ClusterLimit, when positive, merges adjacent per-module transition
	// relations while the conjunction stays below this BDD node count,
	// trading fewer relational-product passes for larger operands. Off by
	// default: on the TTA models it buys ~15% time at roughly double the
	// peak node count (see TestClusterComparison's log).
	ClusterLimit int
	// Obs receives fixpoint-iteration gauges, per-layer frame spans, BDD
	// node counter events, and the engine span. The zero value disables
	// instrumentation.
	Obs obs.Scope
}

func (o Options) clusterLimit() int {
	if o.ClusterLimit < 0 {
		return 0
	}
	return o.ClusterLimit
}

func (o Options) maxIter() int {
	if o.MaxIterations == 0 {
		return 100_000
	}
	return o.MaxIterations
}

// partition is one module's relation with its early-quantification cube:
// the variables quantified immediately after this relation is conjoined.
type partition struct {
	rel     bdd.Ref
	imgCube bdd.Ref // cur+choice vars whose last mention is this relation
	preCube bdd.Ref // next+choice vars whose last mention is this relation
}

// Engine is a symbolic model checker for one compiled system. Not safe for
// concurrent use.
type Engine struct {
	comp *gcl.Compiled
	m    *bdd.Manager
	opts Options

	parts     []partition
	init      bdd.Ref
	curVars   []int
	nextVars  []int
	choice    []int
	curToNext *bdd.Permutation
	nextToCur *bdd.Permutation

	imgPre bdd.Ref // cur+choice vars mentioned by no relation (quantified up front)
	prePre bdd.Ref // next+choice vars mentioned by no relation

	reach     bdd.Ref   // cached reachable set (valid once reached == true)
	layers    []bdd.Ref // BFS frontiers for trace reconstruction
	reached   bool
	iters     int
	peakNodes int
}

// New builds a symbolic engine from a compiled system.
func New(comp *gcl.Compiled, opts Options) (*Engine, error) {
	e := &Engine{comp: comp, opts: opts}
	err := e.guard(func() {
		e.build()
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// cancelled carries a context error out of a fixpoint loop; guard converts
// it back into an error at the API boundary (same mechanism as the node
// limit, so the deep BDD call stacks need no error threading).
type cancelled struct{ err error }

// pollCtx panics with a cancelled value when ctx is done; the fixpoint
// loops call it once per iteration.
func pollCtx(ctx context.Context) {
	if err := ctx.Err(); err != nil {
		panic(cancelled{err})
	}
}

// guard converts bdd.ErrNodeLimit and cancellation panics into errors at
// API boundaries.
func (e *Engine) guard(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if r == bdd.ErrNodeLimit {
				err = fmt.Errorf("symbolic: %w", bdd.ErrNodeLimit)
				return
			}
			if c, ok := r.(cancelled); ok {
				err = c.err
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

func (e *Engine) build() {
	comp := e.comp
	nin := comp.NumInputs()
	e.m = bdd.New(nin, e.opts.BDD)
	e.m.SetObs(e.opts.Obs)

	// Role-indexed variable lists and cur<->next permutations. The
	// compiler interleaves cur/next bits, so renaming is order-preserving.
	permCN := make([]int, nin)
	permNC := make([]int, nin)
	pair := make(map[int]int) // cur input -> next input
	for id := range nin {
		permCN[id] = id
		permNC[id] = id
	}
	for id, info := range comp.Bits {
		switch info.Role {
		case gcl.RoleCur:
			e.curVars = append(e.curVars, id)
			pair[id] = id + 1 // interleaved layout: next bit follows its cur bit
		case gcl.RoleNext:
			e.nextVars = append(e.nextVars, id)
		case gcl.RoleChoice:
			e.choice = append(e.choice, id)
		}
	}
	for c, n := range pair {
		permCN[c] = n
		permNC[n] = c
	}
	e.curToNext = e.m.NewPermutation(permCN)
	e.nextToCur = e.m.NewPermutation(permNC)

	// Pair-group the order for dynamic reordering: each cur bit moves with
	// its next bit, so the renamings above stay order-preserving however
	// sifting rearranges the pairs. Choice variables sift alone.
	groups := make([][]int, 0, len(e.curVars))
	for _, c := range e.curVars {
		groups = append(groups, []int{c, c + 1})
	}
	e.m.SetGroups(groups)

	// Compile circuit cones to BDDs.
	cache := make(map[circuit.Lit]bdd.Ref)
	e.init = e.m.Protect(e.fromCircuit(comp.Init, cache))
	rels := make([]bdd.Ref, len(comp.Rels))
	for i, mr := range comp.Rels {
		rels[i] = e.m.Protect(e.fromCircuit(mr.Rel, cache))
	}

	// Cluster adjacent module relations while the conjunction stays small:
	// fewer relational-product passes with comparably sized operands.
	if limit := e.opts.clusterLimit(); limit > 0 && len(rels) > 1 {
		clustered := make([]bdd.Ref, 0, len(rels))
		cur := rels[0]
		for _, r := range rels[1:] {
			merged := e.m.And(cur, r)
			if e.m.Size(merged) <= limit {
				e.m.Unprotect(cur)
				e.m.Unprotect(r)
				cur = e.m.Protect(merged)
				continue
			}
			clustered = append(clustered, cur)
			cur = r
		}
		clustered = append(clustered, cur)
		rels = clustered
	}

	// Early-quantification schedule: a variable is quantified right after
	// the last relation (in partition order) that mentions it.
	lastAt := make(map[int]int, nin)
	for i, r := range rels {
		for _, v := range e.m.Support(r) {
			lastAt[v] = i
		}
	}
	imgCubes := make([][]int, len(rels))
	preCubes := make([][]int, len(rels))
	var imgPre, prePre []int
	for _, v := range append(append([]int{}, e.curVars...), e.choice...) {
		if i, ok := lastAt[v]; ok {
			imgCubes[i] = append(imgCubes[i], v)
		} else {
			imgPre = append(imgPre, v)
		}
	}
	for _, v := range append(append([]int{}, e.nextVars...), e.choice...) {
		if i, ok := lastAt[v]; ok {
			preCubes[i] = append(preCubes[i], v)
		} else {
			prePre = append(prePre, v)
		}
	}

	e.parts = make([]partition, len(rels))
	for i, r := range rels {
		e.parts[i] = partition{
			rel:     r,
			imgCube: e.m.Protect(e.m.Cube(imgCubes[i])),
			preCube: e.m.Protect(e.m.Cube(preCubes[i])),
		}
	}
	e.imgPre = e.m.Protect(e.m.Cube(imgPre))
	e.prePre = e.m.Protect(e.m.Cube(prePre))
}

// fromCircuit converts an AIG cone into a BDD; circuit input IDs map
// one-to-one onto BDD variable indices.
func (e *Engine) fromCircuit(l circuit.Lit, cache map[circuit.Lit]bdd.Ref) bdd.Ref {
	if r, ok := cache[l]; ok {
		return r
	}
	var r bdd.Ref
	switch {
	case l == circuit.False:
		r = bdd.False
	case l == circuit.True:
		r = bdd.True
	case l.Complemented():
		r = e.m.Not(e.fromCircuit(l.Not(), cache))
	default:
		if id, ok := e.comp.B.InputID(l); ok {
			r = e.m.Var(id)
		} else if a, b, ok := e.comp.B.Fanins(l); ok {
			r = e.m.And(e.fromCircuit(a, cache), e.fromCircuit(b, cache))
		} else {
			panic("symbolic: unrecognized circuit literal")
		}
	}
	cache[l] = r
	return r
}

// Manager exposes the BDD manager (for tests and diagnostics).
func (e *Engine) Manager() *bdd.Manager { return e.m }

// Image computes the successor set of S (over current variables).
func (e *Engine) Image(s bdd.Ref) bdd.Ref {
	acc := e.m.Exists(s, e.imgPre)
	for _, p := range e.parts {
		acc = e.m.AndExists(acc, p.rel, p.imgCube)
	}
	return e.m.Permute(acc, e.nextToCur)
}

// Preimage computes the predecessor set of S (over current variables).
func (e *Engine) Preimage(s bdd.Ref) bdd.Ref {
	acc := e.m.Permute(s, e.curToNext)
	acc = e.m.Exists(acc, e.prePre)
	for _, p := range e.parts {
		acc = e.m.AndExists(acc, p.rel, p.preCube)
	}
	return acc
}

// Reachable computes (and caches) the reachable state set.
func (e *Engine) Reachable() (bdd.Ref, error) {
	return e.ReachableCtx(context.Background())
}

// ReachableCtx computes (and caches) the reachable state set, polling ctx
// once per frontier iteration. A cancelled computation leaves no partial
// cache: a later call restarts the fixpoint from the initial states.
func (e *Engine) ReachableCtx(ctx context.Context) (bdd.Ref, error) {
	if e.reached {
		return e.reach, nil
	}
	// Drop layers left over from a cancelled earlier attempt so trace
	// reconstruction never sees a duplicated prefix.
	for _, l := range e.layers {
		e.m.Unprotect(l)
	}
	e.layers = nil
	err := e.guard(func() {
		reach := e.m.Protect(e.init)
		frontier := e.init
		if !e.opts.NoTrace {
			e.layers = append(e.layers, e.m.Protect(frontier))
		}
		iters := 0
		gIters := e.opts.Obs.Reg.Gauge(obs.MSymbolicIters)
		tracer := e.opts.Obs.Trace
		for frontier != bdd.False {
			pollCtx(ctx)
			if iters++; iters > e.opts.maxIter() {
				panic(bdd.ErrNodeLimit)
			}
			sp := tracer.Start(obs.CatFrame, fmt.Sprintf("layer %d", iters))
			img := e.Image(frontier)
			newStates := e.m.Diff(img, reach)
			newReach := e.m.Or(reach, newStates)
			e.m.Unprotect(reach)
			reach = e.m.Protect(newReach)
			frontier = newStates
			if frontier != bdd.False && !e.opts.NoTrace {
				e.layers = append(e.layers, e.m.Protect(frontier))
			}
			e.maybeGC(frontier)
			gIters.Set(int64(iters))
			if tracer != nil {
				tracer.CounterEvent(obs.CatBDD, obs.MBDDNodes, int64(e.m.NumNodes()))
				sp.Attr("frontier_nodes", e.m.Size(frontier)).End()
			}
		}
		e.reach = reach // stays protected for the engine's lifetime
		e.reached = true
		e.iters = iters
	})
	if err != nil {
		return bdd.False, err
	}
	return e.reach, nil
}

// maybeGC is the engine's safe point: no unprotected intermediate results
// are live here except the extra roots, so both garbage collection and
// dynamic reordering (which starts and ends with a GC) may run.
func (e *Engine) maybeGC(extra ...bdd.Ref) {
	if e.m.NumNodes() > e.peakNodes {
		e.peakNodes = e.m.NumNodes()
	}
	e.m.PublishObs()
	if _, ran := e.m.ReorderIfPending(extra...); ran {
		return
	}
	if e.m.ShouldGC() {
		e.m.GC(extra...)
	}
}

// CountStates returns the exact number of reachable states.
func (e *Engine) CountStates() (*big.Int, error) {
	r, err := e.Reachable()
	if err != nil {
		return nil, err
	}
	return e.m.SatCount(r, e.curVars), nil
}

// Iterations returns the number of reachability fixpoint iterations (the
// diameter of the state graph plus one).
func (e *Engine) Iterations() int { return e.iters }

// fillStats writes the engine's measurements into a run's Stats; the
// run itself stamps Engine and Duration so every engine reports timing
// through the same code path.
func (e *Engine) fillStats(st *mc.Stats) {
	if e.m.NumNodes() > e.peakNodes {
		e.peakNodes = e.m.NumNodes()
	}
	e.m.PublishObs()
	bits := 0
	for _, v := range e.comp.Sys.StateVars() {
		bits += v.Type.Bits()
	}
	st.StateBits = bits
	st.BDDVars = e.comp.NumInputs()
	st.Iterations = e.iters
	st.PeakNodes = e.peakNodes
	st.Reorders = e.m.SnapshotStats().Reorders
}

// CheckInvariant checks G(pred) symbolically.
func (e *Engine) CheckInvariant(prop mc.Property) (*mc.Result, error) {
	return e.CheckInvariantCtx(context.Background(), prop)
}

// CheckInvariantCtx is CheckInvariant with cancellation plumbed into the
// reachability fixpoint.
func (e *Engine) CheckInvariantCtx(ctx context.Context, prop mc.Property) (*mc.Result, error) {
	if prop.Kind != mc.Invariant {
		return nil, fmt.Errorf("symbolic: CheckInvariant on %v property", prop.Kind)
	}
	run := mc.StartRun(e.opts.Obs, EngineName, prop.Name)
	reach, err := e.ReachableCtx(ctx)
	if err != nil {
		run.Abort(err)
		return nil, err
	}
	res := &mc.Result{Property: prop, Verdict: mc.Holds}
	err = e.guard(func() {
		pred := e.m.Protect(e.fromCircuit(e.comp.CompileExpr(prop.Pred), make(map[circuit.Lit]bdd.Ref)))
		defer e.m.Unprotect(pred)
		bad := e.m.Diff(reach, pred)
		if bad != bdd.False {
			res.Verdict = mc.Violated
			res.Trace = e.traceTo(bad)
		}
		e.fillStats(&run.Stats)
		run.Stats.Reachable = e.m.SatCount(reach, e.curVars)
	})
	if err != nil {
		run.Abort(err)
		return nil, err
	}
	res.Stats = run.Finish(res.Verdict)
	return res, nil
}

// CheckEventually checks F(pred) on all paths (AF pred): a violation is an
// infinite execution avoiding pred, i.e. Init ∩ EG(¬pred) ≠ ∅ within the
// reachable states.
func (e *Engine) CheckEventually(prop mc.Property) (*mc.Result, error) {
	return e.CheckEventuallyCtx(context.Background(), prop)
}

// CheckEventuallyCtx is CheckEventually with cancellation plumbed into both
// the reachability and the EG greatest-fixpoint loops.
func (e *Engine) CheckEventuallyCtx(ctx context.Context, prop mc.Property) (*mc.Result, error) {
	if prop.Kind != mc.Eventually {
		return nil, fmt.Errorf("symbolic: CheckEventually on %v property", prop.Kind)
	}
	run := mc.StartRun(e.opts.Obs, EngineName, prop.Name)
	reach, err := e.ReachableCtx(ctx)
	if err != nil {
		run.Abort(err)
		return nil, err
	}
	res := &mc.Result{Property: prop, Verdict: mc.Holds}
	err = e.guard(func() {
		pred := e.fromCircuit(e.comp.CompileExpr(prop.Pred), make(map[circuit.Lit]bdd.Ref))
		notP := e.m.Protect(e.m.And(reach, e.m.Not(pred)))
		defer e.m.Unprotect(notP)

		// Greatest fixpoint: Z = ¬p ∧ reach ∧ EX Z.
		z := e.m.Protect(notP)
		for i := 0; ; i++ {
			pollCtx(ctx)
			if i > e.opts.maxIter() {
				panic(bdd.ErrNodeLimit)
			}
			pre := e.Preimage(z)
			next := e.m.And(notP, pre)
			if next == z {
				break
			}
			e.m.Unprotect(z)
			z = e.m.Protect(next)
			e.maybeGC()
		}
		defer e.m.Unprotect(z)

		seed := e.m.And(e.init, z)
		if seed != bdd.False {
			res.Verdict = mc.Violated
			res.Trace = e.lassoTrace(seed, z)
		}
		e.fillStats(&run.Stats)
		run.Stats.Reachable = e.m.SatCount(reach, e.curVars)
	})
	if err != nil {
		run.Abort(err)
		return nil, err
	}
	res.Stats = run.Finish(res.Verdict)
	return res, nil
}

// CheckDeadlockFree verifies that every reachable state has at least one
// successor (the conjunction of all module relations is satisfiable for
// some choice and next state).
func (e *Engine) CheckDeadlockFree() (*mc.Result, error) {
	prop := mc.Property{Name: "deadlock-free", Kind: mc.Invariant, Pred: gcl.True()}
	run := mc.StartRun(e.opts.Obs, EngineName, prop.Name)
	reach, err := e.Reachable()
	if err != nil {
		run.Abort(err)
		return nil, err
	}
	res := &mc.Result{Property: prop, Verdict: mc.Holds}
	err = e.guard(func() {
		// hasSucc = ∃ choice, next: R — computed with the image pipeline
		// but without quantifying current variables.
		acc := reach
		for _, p := range e.parts {
			acc = e.m.AndExists(acc, p.rel, e.onlyNonCur(p.imgCube))
		}
		acc = e.m.Exists(acc, e.cubeOf(e.nextVars))
		// acc is now the reachable states with a successor.
		stuck := e.m.Diff(reach, acc)
		if stuck != bdd.False {
			res.Verdict = mc.Violated
			res.Trace = e.traceTo(stuck)
		}
		e.fillStats(&run.Stats)
	})
	if err != nil {
		run.Abort(err)
		return nil, err
	}
	res.Stats = run.Finish(res.Verdict)
	return res, nil
}

// onlyNonCur filters a quantification cube down to choice variables (drops
// current-state variables).
func (e *Engine) onlyNonCur(cube bdd.Ref) bdd.Ref {
	vars := e.m.Support(cube)
	keep := vars[:0]
	isChoice := make(map[int]bool, len(e.choice))
	for _, v := range e.choice {
		isChoice[v] = true
	}
	for _, v := range vars {
		if isChoice[v] {
			keep = append(keep, v)
		}
	}
	return e.m.Cube(keep)
}

func (e *Engine) cubeOf(vars []int) bdd.Ref { return e.m.Cube(vars) }

// StateBDD encodes a concrete state as a BDD over current variables.
func (e *Engine) StateBDD(st gcl.State) bdd.Ref {
	// Conjoin from the bottom of the (possibly reordered) order upward so
	// the intermediate results stay linear in size.
	ids := make([]int, 0, len(e.curVars))
	ids = append(ids, e.curVars...)
	sort.Slice(ids, func(a, b int) bool { return e.m.VarLevel(ids[a]) > e.m.VarLevel(ids[b]) })
	r := bdd.True
	for _, i := range ids {
		info := e.comp.Bits[i]
		bitSet := st[info.Var.ID()]&(1<<info.Bit) != 0
		if bitSet {
			r = e.m.And(e.m.Var(i), r)
		} else {
			r = e.m.And(e.m.NVar(i), r)
		}
	}
	return r
}

// decode converts a satisfying cube over current variables into a concrete
// state (don't-cares default to 0).
func (e *Engine) decode(cube []int8) gcl.State {
	assign := make([]bool, len(e.comp.Bits))
	for i, v := range cube {
		assign[i] = v == 1
	}
	return e.comp.DecodeState(assign, gcl.RoleCur)
}

// traceTo builds a shortest path from an initial state into the bad set
// using the stored BFS layers.
func (e *Engine) traceTo(bad bdd.Ref) *mc.Trace {
	if e.opts.NoTrace || len(e.layers) == 0 {
		return nil
	}
	// Find the earliest layer intersecting bad.
	k := -1
	var cur gcl.State
	for i, layer := range e.layers {
		hit := e.m.And(layer, bad)
		if hit != bdd.False {
			k = i
			cur = e.decode(e.m.PickCube(hit))
			break
		}
	}
	if k < 0 {
		return nil
	}
	states := make([]gcl.State, k+1)
	states[k] = cur
	for i := k - 1; i >= 0; i-- {
		pre := e.Preimage(e.StateBDD(states[i+1]))
		hit := e.m.And(pre, e.layers[i])
		states[i] = e.decode(e.m.PickCube(hit))
	}
	return mc.NewTrace(states)
}

// lassoTrace builds a lasso counterexample for a liveness violation: a
// concrete walk inside the EG set until a state repeats.
func (e *Engine) lassoTrace(seed, z bdd.Ref) *mc.Trace {
	vars := e.comp.Sys.StateVars()
	var states []gcl.State
	seenAt := make(map[string]int)
	cur := e.decode(e.m.PickCube(seed))
	for {
		key := gcl.Key(cur, vars)
		if at, ok := seenAt[key]; ok {
			return &mc.Trace{States: states, LoopsTo: at}
		}
		seenAt[key] = len(states)
		states = append(states, cur)
		succ := e.m.And(e.Image(e.StateBDD(cur)), z)
		if succ == bdd.False {
			return mc.NewTrace(states) // defensive; EG guarantees a successor
		}
		cur = e.decode(e.m.PickCube(succ))
		if len(states) > 1_000_000 {
			return mc.NewTrace(states)
		}
	}
}
