package symbolic

import (
	"fmt"

	"ttastartup/internal/bdd"
	"ttastartup/internal/circuit"
	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
)

// CheckCTL evaluates a CTL formula by BDD fixpoint iteration over the
// reachable states (successor-closedness of the reachable set makes the
// restriction sound for queries about initial states). The verdict is
// Holds when every initial state satisfies the formula; on violation the
// trace contains one offending initial state (CTL counterexamples are
// trees in general, so no linear trace is attempted).
func (e *Engine) CheckCTL(name string, f *mc.CTLFormula) (*mc.Result, error) {
	run := mc.StartRun(e.opts.Obs, EngineName, name)
	reach, err := e.Reachable()
	if err != nil {
		run.Abort(err)
		return nil, err
	}
	prop := mc.Property{Name: name, Kind: mc.Invariant, Pred: gcl.True()}
	res := &mc.Result{Property: prop, Verdict: mc.Holds}
	err = e.guard(func() {
		sat := e.evalCTL(f, reach)
		bad := e.m.Diff(e.m.And(e.init, reach), sat)
		if bad != bdd.False {
			res.Verdict = mc.Violated
			res.Trace = mc.NewTrace([]gcl.State{e.decode(e.m.PickCube(bad))})
		}
		e.fillStats(&run.Stats)
		run.Stats.Reachable = e.m.SatCount(reach, e.curVars)
	})
	if err != nil {
		run.Abort(err)
		return nil, err
	}
	res.Stats = run.Finish(res.Verdict)
	return res, nil
}

// evalCTL returns the set of reachable states satisfying f.
func (e *Engine) evalCTL(f *mc.CTLFormula, reach bdd.Ref) bdd.Ref {
	m := e.m
	within := func(s bdd.Ref) bdd.Ref { return m.And(reach, s) }
	ex := func(s bdd.Ref) bdd.Ref { return within(e.Preimage(s)) }

	switch f.Op {
	case mc.CTLAtomOp:
		pred := e.fromCircuit(e.comp.CompileExpr(f.Pred), make(map[circuit.Lit]bdd.Ref))
		return within(pred)
	case mc.CTLNotOp:
		return m.Diff(reach, e.evalCTL(f.L, reach))
	case mc.CTLAndOp:
		// The left result must survive the right subformula's fixpoints,
		// whose safe points may GC or reorder — protect it across the call.
		l := m.Protect(e.evalCTL(f.L, reach))
		r := e.evalCTL(f.R, reach)
		m.Unprotect(l)
		return m.And(l, r)
	case mc.CTLOrOp:
		l := m.Protect(e.evalCTL(f.L, reach))
		r := e.evalCTL(f.R, reach)
		m.Unprotect(l)
		return m.Or(l, r)
	case mc.CTLEXOp:
		return ex(e.evalCTL(f.L, reach))
	case mc.CTLEFOp:
		// μZ. f ∨ EX Z
		target := e.evalCTL(f.L, reach)
		z := m.Protect(target)
		for {
			next := m.Or(target, ex(z))
			if next == z {
				break
			}
			m.Unprotect(z)
			z = m.Protect(next)
			e.maybeGC(target)
		}
		m.Unprotect(z)
		return z
	case mc.CTLEGOp:
		// νZ. f ∧ EX Z
		target := e.evalCTL(f.L, reach)
		z := m.Protect(target)
		for {
			next := m.And(target, ex(z))
			if next == z {
				break
			}
			m.Unprotect(z)
			z = m.Protect(next)
			e.maybeGC(target)
		}
		m.Unprotect(z)
		return z
	case mc.CTLEUOp:
		// μZ. r ∨ (l ∧ EX Z)
		l := e.evalCTL(f.L, reach)
		r := e.evalCTL(f.R, reach)
		z := m.Protect(r)
		for {
			next := m.Or(r, m.And(l, ex(z)))
			if next == z {
				break
			}
			m.Unprotect(z)
			z = m.Protect(next)
			e.maybeGC(l, r)
		}
		m.Unprotect(z)
		return z
	case mc.CTLAXOp:
		// AX f = ¬EX ¬f (on a deadlock-free system).
		return m.Diff(reach, ex(m.Diff(reach, e.evalCTL(f.L, reach))))
	case mc.CTLAFOp:
		// AF f = ¬EG ¬f.
		neg := mc.CTLEG(mc.CTLNot(f.L))
		return m.Diff(reach, e.evalCTL(neg, reach))
	case mc.CTLAGOp:
		// AG f = ¬EF ¬f.
		neg := mc.CTLEF(mc.CTLNot(f.L))
		return m.Diff(reach, e.evalCTL(neg, reach))
	default:
		panic(fmt.Sprintf("symbolic: unknown CTL operator %d", int(f.Op)))
	}
}
