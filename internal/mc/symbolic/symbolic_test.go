package symbolic_test

import (
	"testing"
	"testing/quick"

	"ttastartup/internal/bdd"
	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
	"ttastartup/internal/mc/explicit"
	"ttastartup/internal/mc/symbolic"
)

// ringSystem: two interacting modulo counters with nondeterminism.
func ringSystem() (*gcl.System, *gcl.Var, *gcl.Var) {
	sys := gcl.NewSystem("ring")
	typ := gcl.IntType("c", 5)
	a := sys.Module("a")
	b := sys.Module("b")
	av := a.Var("x", typ, gcl.InitConst(0))
	bv := b.Var("y", typ, gcl.InitConst(2))
	a.Cmd("step", gcl.True(), gcl.Set(av, gcl.AddMod(gcl.X(av), 1)))
	a.Cmd("skip", gcl.True(), gcl.Set(av, gcl.AddMod(gcl.X(av), 2)))
	b.Cmd("track", gcl.True(), gcl.Set(bv, gcl.XN(av)))
	b.Cmd("hold", gcl.Lt(gcl.X(bv), gcl.C(typ, 3)))
	sys.MustFinalize()
	return sys, av, bv
}

// stateOf builds a concrete state.
func stateOf(sys *gcl.System, assign map[*gcl.Var]int) gcl.State {
	st := make(gcl.State, len(sys.Vars()))
	for v, val := range assign {
		st.Set(v, val)
	}
	return st
}

// TestImagePreimageAdjoint checks the Galois connection between the image
// and preimage operators: T ∩ Image({s}) ≠ ∅ ⟺ {s} ∩ Preimage(T) ≠ ∅,
// for random singleton sources and targets.
func TestImagePreimageAdjoint(t *testing.T) {
	sys, av, bv := ringSystem()
	eng, err := symbolic.New(sys.Compile(), symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := eng.Manager()

	f := func(sa, sb, ta, tb uint8) bool {
		src := stateOf(sys, map[*gcl.Var]int{av: int(sa) % 5, bv: int(sb) % 5})
		tgt := stateOf(sys, map[*gcl.Var]int{av: int(ta) % 5, bv: int(tb) % 5})
		srcBDD := eng.StateBDD(src)
		tgtBDD := eng.StateBDD(tgt)
		forward := m.And(eng.Image(srcBDD), tgtBDD) != bdd.False
		backward := m.And(eng.Preimage(tgtBDD), srcBDD) != bdd.False
		return forward == backward
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestImageMatchesStepper: the symbolic image of a singleton equals the
// stepper's successor set.
func TestImageMatchesStepper(t *testing.T) {
	sys, av, bv := ringSystem()
	eng, err := symbolic.New(sys.Compile(), symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := eng.Manager()
	stepper := gcl.NewStepper(sys)

	for sa := range 5 {
		for sb := range 5 {
			src := stateOf(sys, map[*gcl.Var]int{av: sa, bv: sb})
			img := eng.Image(eng.StateBDD(src))
			// Every stepper successor must be in the image, and the image
			// must contain nothing else.
			count := 0
			seen := map[string]bool{}
			vars := sys.StateVars()
			stepper.Successors(src, func(next gcl.State) bool {
				k := gcl.Key(next, vars)
				if !seen[k] {
					seen[k] = true
					count++
					if m.And(img, eng.StateBDD(next)) == bdd.False {
						t.Fatalf("successor missing from image at (%d,%d)", sa, sb)
					}
				}
				return true
			})
			// Compare cardinalities over the two variables' value grid.
			inImage := 0
			for na := range 5 {
				for nb := range 5 {
					cand := stateOf(sys, map[*gcl.Var]int{av: na, bv: nb})
					if m.And(img, eng.StateBDD(cand)) != bdd.False {
						inImage++
					}
				}
			}
			if inImage != count {
				t.Fatalf("image cardinality %d != stepper successors %d at (%d,%d)", inImage, count, sa, sb)
			}
		}
	}
}

// TestReachableIsClosed: the reachable set must be closed under Image and
// contain the initial states.
func TestReachableIsClosed(t *testing.T) {
	sys, _, _ := ringSystem()
	eng, err := symbolic.New(sys.Compile(), symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reach, err := eng.Reachable()
	if err != nil {
		t.Fatal(err)
	}
	m := eng.Manager()
	img := eng.Image(reach)
	if m.Diff(img, reach) != bdd.False {
		t.Error("reachable set not closed under the image operator")
	}
}

// TestFullFlowInPackage exercises reach, counting, invariants, liveness,
// deadlock detection, and CTL end-to-end within the package.
func TestFullFlowInPackage(t *testing.T) {
	sys, av, bv := ringSystem()
	eng, err := symbolic.New(sys.Compile(), symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	count, err := eng.CountStates()
	if err != nil {
		t.Fatal(err)
	}
	if count.Sign() <= 0 {
		t.Fatal("empty reachable set")
	}

	typ := gcl.IntType("c", 5)
	inv := mc.Property{Name: "y-in-range", Kind: mc.Invariant,
		Pred: gcl.Le(gcl.X(bv), gcl.C(typ, 4))}
	res, err := eng.CheckInvariant(inv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Holds {
		t.Errorf("invariant: %v", res.Verdict)
	}

	bad := mc.Property{Name: "x-avoids-3", Kind: mc.Invariant,
		Pred: gcl.Ne(gcl.X(av), gcl.C(typ, 3))}
	resBad, err := eng.CheckInvariant(bad)
	if err != nil {
		t.Fatal(err)
	}
	if resBad.Verdict != mc.Violated || resBad.Trace == nil {
		t.Errorf("bad invariant: %v", resBad.Verdict)
	}

	live := mc.Property{Name: "y-reaches-4", Kind: mc.Eventually,
		Pred: gcl.Eq(gcl.X(bv), gcl.C(typ, 4))}
	resLive, err := eng.CheckEventually(live)
	if err != nil {
		t.Fatal(err)
	}
	// b may "hold" below 3 forever only while y < 3; x keeps moving and b
	// tracks x nondeterministically — verify agreement with explicit.
	expRes, err := explicit.CheckEventually(sys, live, explicit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resLive.Verdict != expRes.Verdict {
		t.Errorf("liveness: symbolic %v explicit %v", resLive.Verdict, expRes.Verdict)
	}

	dl, err := eng.CheckDeadlockFree()
	if err != nil {
		t.Fatal(err)
	}
	if dl.Verdict != mc.Holds {
		t.Errorf("deadlock-free: %v", dl.Verdict)
	}

	ctl, err := eng.CheckCTL("ef-x3", mc.CTLEF(mc.CTLAtom(gcl.Eq(gcl.X(av), gcl.C(typ, 3)))))
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Verdict != mc.Holds {
		t.Errorf("EF x=3: %v", ctl.Verdict)
	}
}
