package mc_test

import (
	"errors"
	"testing"

	"ttastartup/internal/bdd"
	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
	"ttastartup/internal/mc/bmc"
	"ttastartup/internal/mc/symbolic"
)

// bigCounter builds a system with a deep state graph.
func bigCounter(card int) (*gcl.System, *gcl.Var) {
	sys := gcl.NewSystem("bigcounter")
	m := sys.Module("m")
	typ := gcl.IntType("c", card)
	v := m.Var("v", typ, gcl.InitConst(0))
	m.Cmd("inc", gcl.B(true), gcl.Set(v, gcl.AddMod(gcl.X(v), 1)))
	sys.MustFinalize()
	return sys, v
}

// TestSymbolicNodeLimitIsError: exceeding the BDD node pool must surface
// as an error, not a panic.
func TestSymbolicNodeLimitIsError(t *testing.T) {
	sys, _ := bigCounter(4096)
	eng, err := symbolic.New(sys.Compile(), symbolic.Options{
		BDD: bdd.Config{NodeLimit: 64},
	})
	if err == nil {
		// Construction may survive on a tiny model; reachability must not.
		_, err = eng.Reachable()
	}
	if err == nil {
		t.Fatal("expected a node-limit error")
	}
	if !errors.Is(err, bdd.ErrNodeLimit) {
		t.Errorf("error %v does not wrap ErrNodeLimit", err)
	}
}

// TestSymbolicNoTrace: disabling layers must still verify and must omit
// counterexample traces.
func TestSymbolicNoTrace(t *testing.T) {
	sys, v := bigCounter(64)
	eng, err := symbolic.New(sys.Compile(), symbolic.Options{NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	prop := mc.Property{Name: "v-small", Kind: mc.Invariant,
		Pred: gcl.Lt(gcl.X(v), gcl.C(gcl.IntType("c", 64), 40))}
	res, err := eng.CheckInvariant(prop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Violated {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Trace != nil {
		t.Error("NoTrace should omit the counterexample")
	}
}

// TestSymbolicMaxIterations: the iteration cap guards runaway fixpoints.
func TestSymbolicMaxIterations(t *testing.T) {
	sys, _ := bigCounter(4096)
	eng, err := symbolic.New(sys.Compile(), symbolic.Options{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Reachable(); err == nil {
		t.Error("expected an error from the iteration cap")
	}
}

// TestBMCMinDepth: probing can start above zero.
func TestBMCMinDepth(t *testing.T) {
	sys, v := bigCounter(32)
	prop := mc.Property{Name: "v-ne-5", Kind: mc.Invariant,
		Pred: gcl.Ne(gcl.X(v), gcl.C(gcl.IntType("c", 32), 5))}
	res, err := bmc.CheckInvariant(sys.Compile(), prop, bmc.Options{MinDepth: 3, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Violated || res.Stats.Iterations != 5 {
		t.Errorf("verdict %v at depth %d, want violated at 5", res.Verdict, res.Stats.Iterations)
	}
}

// TestBMCDepthZeroChecksInitial: a violated initial condition is found at
// depth zero.
func TestBMCDepthZeroChecksInitial(t *testing.T) {
	sys, v := bigCounter(8)
	prop := mc.Property{Name: "v-ne-0", Kind: mc.Invariant,
		Pred: gcl.Ne(gcl.X(v), gcl.C(gcl.IntType("c", 8), 0))}
	res, err := bmc.CheckInvariant(sys.Compile(), prop, bmc.Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Violated || res.Trace.Len() != 1 {
		t.Errorf("want violation at depth 0, got %v len %d", res.Verdict, traceLen(res))
	}
}

func traceLen(r *mc.Result) int {
	if r.Trace == nil {
		return 0
	}
	return r.Trace.Len()
}

// TestBMCRequiresDepth: a missing MaxDepth is a usage error.
func TestBMCRequiresDepth(t *testing.T) {
	sys, _ := bigCounter(8)
	prop := mc.Property{Name: "true", Kind: mc.Invariant, Pred: gcl.True()}
	if _, err := bmc.CheckInvariant(sys.Compile(), prop, bmc.Options{}); err == nil {
		t.Error("expected an error for MaxDepth 0")
	}
}

// TestKindMismatchErrors: engines reject properties of the wrong kind.
func TestKindMismatchErrors(t *testing.T) {
	sys, _ := bigCounter(8)
	comp := sys.Compile()
	eng, err := symbolic.New(comp, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inv := mc.Property{Name: "p", Kind: mc.Invariant, Pred: gcl.True()}
	ev := mc.Property{Name: "q", Kind: mc.Eventually, Pred: gcl.True()}
	if _, err := eng.CheckInvariant(ev); err == nil {
		t.Error("CheckInvariant accepted an Eventually property")
	}
	if _, err := eng.CheckEventually(inv); err == nil {
		t.Error("CheckEventually accepted an Invariant property")
	}
	if _, err := bmc.CheckInvariant(comp, ev, bmc.Options{MaxDepth: 2}); err == nil {
		t.Error("bmc accepted an Eventually property")
	}
}
