// Package mc defines engine-independent model-checking vocabulary shared by
// the explicit-state, symbolic (BDD), and bounded (SAT) engines: properties,
// verdicts, counterexample traces, and run statistics.
package mc

import (
	"fmt"
	"math/big"
	"strings"
	"time"

	"ttastartup/internal/gcl"
)

// PropertyKind distinguishes the two LTL shapes the engines support, the
// same two used by the paper's lemmas: invariants G(p) and inevitability
// F(p) (on all paths, i.e. CTL AF p).
type PropertyKind int

// Property kinds.
const (
	// Invariant is G(p): p holds in every reachable state.
	Invariant PropertyKind = iota + 1
	// Eventually is F(p) over all paths (AF p): every execution reaches p.
	Eventually
)

func (k PropertyKind) String() string {
	switch k {
	case Invariant:
		return "G"
	case Eventually:
		return "F"
	default:
		return fmt.Sprintf("PropertyKind(%d)", int(k))
	}
}

// Property is a named temporal property over a system's state variables.
type Property struct {
	Name string
	Kind PropertyKind
	Pred gcl.Expr
}

// String renders the property in LTL-ish notation.
func (p Property) String() string {
	return fmt.Sprintf("%s: %s(%s)", p.Name, p.Kind, p.Pred)
}

// Verdict is the outcome of a model-checking run.
type Verdict int

// Verdicts.
const (
	// Holds means the property was proved for the whole state space
	// explored by the engine (exhaustively for explicit/symbolic engines;
	// up to the depth bound for BMC, which reports HoldsBounded instead).
	Holds Verdict = iota + 1
	// Violated means a counterexample was found.
	Violated
	// HoldsBounded means no counterexample exists within the engine's
	// depth bound; the unbounded property remains open.
	HoldsBounded
)

func (v Verdict) String() string {
	switch v {
	case Holds:
		return "holds"
	case Violated:
		return "VIOLATED"
	case HoldsBounded:
		return "holds (bounded)"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Trace is a counterexample: a finite path from an initial state. For
// liveness violations, LoopsTo >= 0 gives the index the final state loops
// back to (a lasso); otherwise LoopsTo is -1.
type Trace struct {
	States  []gcl.State
	LoopsTo int
}

// NewTrace builds a finite (non-lasso) trace.
func NewTrace(states []gcl.State) *Trace {
	return &Trace{States: states, LoopsTo: -1}
}

// Len returns the number of states in the trace.
func (t *Trace) Len() int { return len(t.States) }

// Format renders the trace step by step, showing only changed variables
// after the first state.
func (t *Trace) Format(sys *gcl.System) string {
	var b strings.Builder
	for i, st := range t.States {
		if i == 0 {
			fmt.Fprintf(&b, "step %2d: %s\n", i, sys.FormatState(st))
			continue
		}
		fmt.Fprintf(&b, "step %2d: %s\n", i, sys.FormatDelta(t.States[i-1], st))
	}
	if t.LoopsTo >= 0 {
		fmt.Fprintf(&b, "  (loops back to step %d)\n", t.LoopsTo)
	}
	return b.String()
}

// Stats records measurements of a model-checking run, mirroring the columns
// the paper reports (cpu time, BDD variables) plus engine-specific counts.
type Stats struct {
	Engine     string
	Duration   time.Duration
	StateBits  int      // number of boolean state bits (the paper's "BDD" column counts cur+next)
	BDDVars    int      // total BDD variables (cur+next+choice), 0 for non-symbolic engines
	Reachable  *big.Int // reachable-state count when computed
	Visited    int      // explicit engine: states visited
	Iterations int      // symbolic engine: fixpoint iterations; BMC: depth reached; IC3: frames
	PeakNodes  int      // symbolic engine: peak live BDD nodes
	Reorders   int      // symbolic engine: BDD sifting passes run
	Conflicts  int      // SAT engines: CDCL conflicts

	// SAT-engine query accounting (BMC, k-induction, IC3), filled by
	// SATTap.FillStats so every engine reports through one code path.
	SATQueries   int     // incremental Solve calls issued
	Decisions    int     // CDCL decision levels opened
	Propagations int     // CDCL unit-propagation dequeues
	Restarts     int     // CDCL Luby restarts
	Obligations  int     // IC3: proof obligations discharged
	CoreShrink   float64 // IC3: mean fraction of cube literals kept by assumption cores

	// Static-optimizer accounting (internal/gcl/opt), filled by core.Suite
	// when the run checked an optimized system instead of the source model.
	OptVarsDropped int // state variables eliminated by the pipeline
	OptCmdsDropped int // commands eliminated by the pipeline
	OptBitsSaved   int // state-encoding bits removed per frame
}

// Result is the outcome of checking one property with one engine.
type Result struct {
	Property Property
	Verdict  Verdict
	Trace    *Trace // nil when the property holds
	Stats    Stats
}

// Holds reports whether the verdict is Holds or HoldsBounded.
func (r *Result) Holds() bool { return r.Verdict == Holds || r.Verdict == HoldsBounded }

// String renders a one-line summary.
func (r *Result) String() string {
	extra := ""
	if r.Trace != nil {
		extra = fmt.Sprintf(" (counterexample length %d)", r.Trace.Len())
	}
	return fmt.Sprintf("%s [%s] %s in %v%s",
		r.Property.Name, r.Stats.Engine, r.Verdict, r.Stats.Duration.Round(time.Millisecond), extra)
}
