package mc_test

import (
	"strings"
	"testing"

	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
)

func TestPropertyString(t *testing.T) {
	sys := gcl.NewSystem("s")
	m := sys.Module("m")
	v := m.Var("v", gcl.IntType("t", 4), gcl.InitConst(0))
	m.Cmd("t", gcl.True())
	sys.MustFinalize()

	p := mc.Property{Name: "demo", Kind: mc.Invariant, Pred: gcl.Lt(gcl.X(v), gcl.C(gcl.IntType("t", 4), 3))}
	if got := p.String(); !strings.Contains(got, "demo") || !strings.Contains(got, "G(") {
		t.Errorf("Property.String = %q", got)
	}
	p.Kind = mc.Eventually
	if got := p.String(); !strings.Contains(got, "F(") {
		t.Errorf("Property.String = %q", got)
	}
}

func TestVerdictStrings(t *testing.T) {
	if mc.Holds.String() != "holds" || mc.Violated.String() != "VIOLATED" ||
		mc.HoldsBounded.String() != "holds (bounded)" {
		t.Error("verdict strings broken")
	}
}

func TestTraceFormatLasso(t *testing.T) {
	sys := gcl.NewSystem("s")
	m := sys.Module("m")
	v := m.Var("v", gcl.IntType("t", 4), gcl.InitConst(0))
	m.Cmd("inc", gcl.True(), gcl.Set(v, gcl.AddMod(gcl.X(v), 1)))
	sys.MustFinalize()

	mk := func(val int) gcl.State {
		st := make(gcl.State, len(sys.Vars()))
		st.Set(v, val)
		return st
	}
	tr := &mc.Trace{States: []gcl.State{mk(0), mk(1), mk(2)}, LoopsTo: 1}
	text := tr.Format(sys)
	for _, want := range []string{"step  0", "m.v=1", "loops back to step 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing %q:\n%s", want, text)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestResultString(t *testing.T) {
	res := &mc.Result{
		Property: mc.Property{Name: "p", Kind: mc.Invariant, Pred: gcl.True()},
		Verdict:  mc.Violated,
		Trace:    mc.NewTrace([]gcl.State{make(gcl.State, 1)}),
		Stats:    mc.Stats{Engine: "symbolic"},
	}
	s := res.String()
	for _, want := range []string{"p", "symbolic", "VIOLATED", "length 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String missing %q: %s", want, s)
		}
	}
	if res.Holds() {
		t.Error("violated result reported as holding")
	}
}

func TestCTLString(t *testing.T) {
	sys := gcl.NewSystem("s")
	m := sys.Module("m")
	v := m.Var("v", gcl.BoolType(), gcl.InitConst(0))
	m.Cmd("t", gcl.True())
	sys.MustFinalize()
	atom := mc.CTLAtom(gcl.X(v))
	f := mc.CTLAG(mc.CTLAF(mc.CTLOr(atom, mc.CTLNot(mc.CTLEX(atom)))))
	s := f.String()
	for _, want := range []string{"AG", "AF", "EX", "!("} {
		if !strings.Contains(s, want) {
			t.Errorf("CTL string missing %q: %s", want, s)
		}
	}
	u := mc.CTLEU(atom, mc.CTLAX(atom)).String()
	if !strings.Contains(u, "E[") || !strings.Contains(u, " U ") || !strings.Contains(u, "AX") {
		t.Errorf("EU/AX rendering: %s", u)
	}
}
