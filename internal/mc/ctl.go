package mc

import (
	"fmt"

	"ttastartup/internal/gcl"
)

// CTLOp is a CTL formula constructor.
type CTLOp int

// CTL operators.
const (
	CTLAtomOp CTLOp = iota + 1
	CTLNotOp
	CTLAndOp
	CTLOrOp
	CTLEXOp
	CTLEFOp
	CTLEGOp
	CTLEUOp
	CTLAXOp
	CTLAFOp
	CTLAGOp
)

// CTLFormula is a computation-tree-logic formula over a system's state
// predicates. Build formulas with the constructor functions; the symbolic
// and explicit engines evaluate them by fixpoint iteration (an extension
// beyond the paper's LTL lemma set — notably AG(AF p), the recovery
// property used for the restart problem).
type CTLFormula struct {
	Op   CTLOp
	Pred gcl.Expr // CTLAtomOp only
	L, R *CTLFormula
}

// CTLAtom lifts a state predicate.
func CTLAtom(pred gcl.Expr) *CTLFormula { return &CTLFormula{Op: CTLAtomOp, Pred: pred} }

// CTLNot negates a formula.
func CTLNot(f *CTLFormula) *CTLFormula { return &CTLFormula{Op: CTLNotOp, L: f} }

// CTLAnd conjoins two formulas.
func CTLAnd(l, r *CTLFormula) *CTLFormula { return &CTLFormula{Op: CTLAndOp, L: l, R: r} }

// CTLOr disjoins two formulas.
func CTLOr(l, r *CTLFormula) *CTLFormula { return &CTLFormula{Op: CTLOrOp, L: l, R: r} }

// CTLEX: some successor satisfies f.
func CTLEX(f *CTLFormula) *CTLFormula { return &CTLFormula{Op: CTLEXOp, L: f} }

// CTLEF: some path eventually reaches f.
func CTLEF(f *CTLFormula) *CTLFormula { return &CTLFormula{Op: CTLEFOp, L: f} }

// CTLEG: some path satisfies f forever.
func CTLEG(f *CTLFormula) *CTLFormula { return &CTLFormula{Op: CTLEGOp, L: f} }

// CTLEU: some path satisfies l until r holds.
func CTLEU(l, r *CTLFormula) *CTLFormula { return &CTLFormula{Op: CTLEUOp, L: l, R: r} }

// CTLAX: every successor satisfies f.
func CTLAX(f *CTLFormula) *CTLFormula { return &CTLFormula{Op: CTLAXOp, L: f} }

// CTLAF: every path eventually reaches f.
func CTLAF(f *CTLFormula) *CTLFormula { return &CTLFormula{Op: CTLAFOp, L: f} }

// CTLAG: every path satisfies f forever.
func CTLAG(f *CTLFormula) *CTLFormula { return &CTLFormula{Op: CTLAGOp, L: f} }

// String renders the formula.
func (f *CTLFormula) String() string {
	switch f.Op {
	case CTLAtomOp:
		return f.Pred.String()
	case CTLNotOp:
		return "!(" + f.L.String() + ")"
	case CTLAndOp:
		return "(" + f.L.String() + " & " + f.R.String() + ")"
	case CTLOrOp:
		return "(" + f.L.String() + " | " + f.R.String() + ")"
	case CTLEXOp:
		return "EX " + f.L.String()
	case CTLEFOp:
		return "EF " + f.L.String()
	case CTLEGOp:
		return "EG " + f.L.String()
	case CTLEUOp:
		return "E[" + f.L.String() + " U " + f.R.String() + "]"
	case CTLAXOp:
		return "AX " + f.L.String()
	case CTLAFOp:
		return "AF " + f.L.String()
	case CTLAGOp:
		return "AG " + f.L.String()
	default:
		return fmt.Sprintf("CTL(%d)", int(f.Op))
	}
}
