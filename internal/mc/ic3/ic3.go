// Package ic3 implements IC3/PDR (property-directed reachability):
// unbounded invariant proofs by incremental induction, without unrolling
// the transition relation. The engine maintains a trapezoid of frames
// F0 ⊇ F1 ⊇ ... ⊇ Fk — clause sets over current-state bits where Fi
// overapproximates the states reachable in at most i steps — and discharges
// proof obligations (bad states and their predecessors) with many small
// incremental SAT queries against a single solver. A state cube is blocked
// at frame i by showing its negation inductive relative to F(i-1); the
// blocking clause is generalized by dropping literals, driven by the
// solver's assumption cores (sat.Solver.FinalConflict). When clause
// propagation makes two adjacent frames equal, Fi is an inductive invariant
// and the property is proved for every depth; when an obligation chain
// reaches an initial state, the chain itself is the counterexample trace.
package ic3

import (
	"context"
	"fmt"
	"sort"

	"ttastartup/internal/circuit"
	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
	"ttastartup/internal/obs"
	"ttastartup/internal/sat"
)

// EngineName identifies this engine in Stats.
const EngineName = "ic3"

// Options tunes the checker.
type Options struct {
	// MaxFrames caps the frame trapezoid; 0 means unbounded (IC3
	// terminates on its own on finite systems). When the cap is hit
	// without convergence the verdict is HoldsBounded.
	MaxFrames int
	// NoGeneralize disables the drop-literal generalization pass beyond
	// the unsat-core shrink (for diagnostics and tests).
	NoGeneralize bool
	// Progress, when non-nil, is called with a counter snapshot whenever a
	// frame opens and after every blocked obligation (diagnostics).
	Progress func(frames, clauses, inf, obligations, queries int)
	// Obs receives per-frame spans, per-query SAT spans and counter flushes,
	// obligation/core counters, and the engine span. The zero value disables
	// instrumentation.
	Obs obs.Scope
}

// clit is one cube literal: circuit input id (a current-state bit) = val.
type clit struct {
	id  int
	val bool
}

// cube is a conjunction of current-state literals, sorted by input id.
// Cubes extracted from SAT models are complete (every state bit); blocking
// generalizes them to subsets.
type cube []clit

// subsumes reports whether every literal of c occurs in d (so the states
// of c are a superset of d's and ¬c blocks everything ¬d would).
func (c cube) subsumes(d cube) bool {
	j := 0
	for _, l := range c {
		for j < len(d) && d[j].id < l.id {
			j++
		}
		if j >= len(d) || d[j].id != l.id || d[j].val != l.val {
			return false
		}
	}
	return true
}

// without returns a copy of c with literal index i removed.
func (c cube) without(i int) cube {
	out := make(cube, 0, len(c)-1)
	out = append(out, c[:i]...)
	out = append(out, c[i+1:]...)
	return out
}

// fclause is one blocking clause ¬cube, tracked at the highest frame it is
// known to hold for (delta encoding: it belongs to every Fi with i ≤ level).
// stamp remembers the frame generation (see engine.frameGen) of the last
// failed attempt to push the clause one level out; while the source frame
// is unchanged the attempt cannot start succeeding, so propagation skips it.
type fclause struct {
	cube  cube
	level int
	stamp int
}

// obligation is a cube to exclude at a frame; parent points one step
// toward the property violation, so a chain reaching an initial state is a
// counterexample. succ is the concrete completion of parent's cube that
// the SAT model witnessed when this obligation was created: the parent
// cube may be partial (the top cube is lifted to an unsat core), so the
// trace must use the witnessed completion, not an arbitrary one.
type obligation struct {
	cube   cube
	succ   gcl.State
	frame  int
	parent *obligation
	seq    int
}

// obHeap orders obligations by frame (deepest first), then FIFO.
type obHeap []*obligation

func (h obHeap) Len() int { return len(h) }
func (h obHeap) Less(i, j int) bool {
	if h[i].frame != h[j].frame {
		return h[i].frame < h[j].frame
	}
	return h[i].seq < h[j].seq
}
func (h obHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *obHeap) push(ob *obligation) {
	*h = append(*h, ob)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.Less(i, p) {
			break
		}
		h.Swap(i, p)
		i = p
	}
}

func (h *obHeap) pop() *obligation {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.Less(c+1, c) {
			c++
		}
		if !h.Less(c, i) {
			break
		}
		h.Swap(i, c)
		i = c
	}
	return top
}

// engine holds one IC3 run: a single incremental solver with the step
// encoding (cur, choice, next bits of one transition) plus activation
// literals that switch the transition relation and each frame's clauses
// into individual queries.
type engine struct {
	comp *gcl.Compiled
	ctx  context.Context
	opts Options

	solver *sat.Solver
	vars   []int // circuit input id -> SAT variable
	memo   map[circuit.Lit]sat.Lit

	initLit sat.Lit // assumable: initial-state predicate over cur bits
	tLit    sat.Lit // assumable: activates the transition relation
	badLit  sat.Lit // assumable: ¬property over cur bits

	curIDs  []int // RoleCur input ids, ascending
	nextIDs []int // cur input id -> matching RoleNext input id

	acts   []sat.Lit // acts[l] activates clauses whose level is exactly l
	frames [][]*fclause

	// Syntactic initial-state intersection: the compiled Init is a product
	// of independent per-variable constraints (gcl.InitConst/InitSet/InitAny),
	// so cube-vs-Init checks are pure bit arithmetic instead of SAT queries.
	varOf   []int    // cur input id -> dense state-var index
	bitOf   []int    // cur input id -> bit position within the variable
	vinits  [][]int  // dense var index -> permitted initial values
	maskSc  []uint32 // scratch: bits of the var fixed by the cube
	wantSc  []uint32 // scratch: required values of those bits
	stampSc []int    // scratch: generation stamp guarding maskSc/wantSc
	witness []int    // latest intersecting initial state, one value per var
	gen     int

	addCnt []int      // clause additions per level, for frameGen
	inf    []*fclause // F∞: absolutely inductive clauses, asserted permanently

	obSeq       int
	queries     int
	obligations int
	coreKept    int
	coreTotal   int

	// Observability sinks: the tap is the single SAT accounting path; the
	// remaining handles are resolved once in newEngine (all nil-safe).
	tap        *mc.SATTap
	frameSpan  *obs.Span
	gFrames    *obs.Gauge
	gQueue     *obs.Gauge
	cObls      *obs.Counter
	cCoreKept  *obs.Counter
	cCoreTotal *obs.Counter
}

// frameGen returns a generation counter for Fi: the number of clauses ever
// added at levels ≥ i. The consecution query over Fi can only change answer
// (UNSAT-wards) when this grows.
func (e *engine) frameGen(i int) int {
	g := 0
	for l := i; l < len(e.addCnt); l++ {
		g += e.addCnt[l]
	}
	return g
}

func newEngine(ctx context.Context, comp *gcl.Compiled, prop mc.Property, opts Options) *engine {
	e := &engine{
		comp:   comp,
		ctx:    ctx,
		opts:   opts,
		solver: sat.New(),
		memo:   make(map[circuit.Lit]sat.Lit),
	}
	e.tap = mc.NewSATTap(opts.Obs, e.solver)
	e.gFrames = opts.Obs.Reg.Gauge(obs.MIC3Frames)
	e.gQueue = opts.Obs.Reg.Gauge(obs.MIC3QueueDepth)
	e.cObls = opts.Obs.Reg.Counter(obs.MIC3Obligations)
	e.cCoreKept = opts.Obs.Reg.Counter(obs.MIC3CoreKept)
	e.cCoreTotal = opts.Obs.Reg.Counter(obs.MIC3CoreTotal)
	e.vars = make([]int, comp.NumInputs())
	for id := range e.vars {
		e.vars[id] = e.solver.NewVar()
	}
	e.nextIDs = make([]int, comp.NumInputs())
	for id, info := range comp.Bits {
		if info.Role != gcl.RoleCur {
			continue
		}
		// The compiler interleaves state bits: each cur bit is allocated
		// immediately before its next bit (see gcl.Compile).
		next := id + 1
		if next >= len(comp.Bits) || comp.Bits[next].Role != gcl.RoleNext ||
			comp.Bits[next].Var != info.Var || comp.Bits[next].Bit != info.Bit {
			panic("ic3: compiled bit layout: cur bit not followed by its next bit")
		}
		e.curIDs = append(e.curIDs, id)
		e.nextIDs[id] = next
	}
	e.solver.SetStop(func() bool { return ctx.Err() != nil })

	e.initLit = e.encode(comp.Init)
	e.badLit = e.encode(comp.CompileExpr(prop.Pred)).Not()
	// Every reachable state is in-range (initial states are, and updates
	// are domain-checked), but the binary encoding admits out-of-range bit
	// patterns. Assert the domain constraints over current-state bits
	// permanently: without them the bad region is bloated with garbage
	// states the engine would have to block cube by cube.
	vars := comp.Sys.StateVars()
	vidx := make(map[*gcl.Var]int, len(vars))
	e.vinits = make([][]int, len(vars))
	for i, v := range vars {
		e.solver.AddClause(e.encode(comp.B.InRangeBV(comp.CurBV(v), v.Type.Card)))
		vidx[v] = i
		vals := v.InitValues()
		if vals == nil {
			vals = make([]int, v.Type.Card)
			for w := range vals {
				vals[w] = w
			}
		}
		e.vinits[i] = vals
	}
	e.varOf = make([]int, comp.NumInputs())
	e.bitOf = make([]int, comp.NumInputs())
	for _, id := range e.curIDs {
		e.varOf[id] = vidx[comp.Bits[id].Var]
		e.bitOf[id] = comp.Bits[id].Bit
	}
	e.maskSc = make([]uint32, len(vars))
	e.wantSc = make([]uint32, len(vars))
	e.stampSc = make([]int, len(vars))
	e.witness = make([]int, len(vars))
	e.tLit = sat.Pos(e.solver.NewVar())
	for _, mr := range comp.Rels {
		e.solver.AddClause(e.tLit.Not(), e.encode(mr.Rel))
	}

	// acts[0]/frames[0] are unused: F0 is the initial-state predicate.
	e.acts = []sat.Lit{0}
	e.frames = [][]*fclause{nil}
	e.addCnt = []int{0}
	return e
}

// k returns the index of the frontier frame.
func (e *engine) k() int { return len(e.acts) - 1 }

// newFrame opens frame k+1 with an empty clause set.
func (e *engine) newFrame() {
	e.acts = append(e.acts, sat.Pos(e.solver.NewVar()))
	e.frames = append(e.frames, nil)
	e.addCnt = append(e.addCnt, 0)
	e.frameSpan.End()
	e.frameSpan = e.opts.Obs.Trace.Start(obs.CatFrame, fmt.Sprintf("F%d", e.k()))
	e.gFrames.SetMax(int64(e.k()))
	e.progress()
}

// encode Tseitin-encodes the cone of l and returns its literal (the
// single-frame analogue of bmc.Checker.encode).
func (e *engine) encode(l circuit.Lit) sat.Lit {
	switch {
	case l == circuit.True:
		return e.constTrue()
	case l == circuit.False:
		return e.constTrue().Not()
	case l.Complemented():
		return e.encode(l.Not()).Not()
	}
	if lit, ok := e.memo[l]; ok {
		return lit
	}
	var lit sat.Lit
	if id, ok := e.comp.B.InputID(l); ok {
		lit = sat.Pos(e.vars[id])
	} else {
		a, b, ok := e.comp.B.Fanins(l)
		if !ok {
			panic("ic3: unrecognized circuit literal")
		}
		la := e.encode(a)
		lb := e.encode(b)
		x := sat.Pos(e.solver.NewVar())
		// x <-> la AND lb
		e.solver.AddClause(x.Not(), la)
		e.solver.AddClause(x.Not(), lb)
		e.solver.AddClause(x, la.Not(), lb.Not())
		lit = x
	}
	e.memo[l] = lit
	return lit
}

func (e *engine) constTrue() sat.Lit {
	if lit, ok := e.memo[circuit.True]; ok {
		return lit
	}
	v := sat.Pos(e.solver.NewVar())
	e.solver.AddClause(v)
	e.memo[circuit.True] = v
	return v
}

// litFor returns the SAT literal of a cube literal, primed (next-state
// copy) or unprimed.
func (e *engine) litFor(l clit, primed bool) sat.Lit {
	id := l.id
	if primed {
		id = e.nextIDs[id]
	}
	if l.val {
		return sat.Pos(e.vars[id])
	}
	return sat.Neg(e.vars[id])
}

// query is the single SAT entry point: a false result is UNSAT only when
// the returned error is nil; an interrupted search surfaces the context
// error instead, so no deadline or cancellation is ever misread as a proof.
func (e *engine) query(assumps []sat.Lit) (bool, error) {
	e.queries++
	if e.queries%2048 == 0 {
		// Consecution queries retire one temporary clause each; compact the
		// clause database periodically so they stop burdening propagation.
		e.solver.Simplify()
	}
	e.progress()
	if e.tap.Solve(assumps...) {
		return true, nil
	}
	if e.solver.Stopped() {
		if err := e.ctx.Err(); err != nil {
			return false, err
		}
		return false, context.Canceled
	}
	return false, nil
}

// frameAssumps returns the activation literals selecting frame Fi: the
// initial-state predicate for F0, plus every clause set at levels ≥ max(i,1)
// (the trapezoid is delta-encoded; a clause at level l holds in all Fj, j ≤ l).
func (e *engine) frameAssumps(i int, extra ...sat.Lit) []sat.Lit {
	as := make([]sat.Lit, 0, e.k()+len(extra)+1)
	lo := i
	if i == 0 {
		as = append(as, e.initLit)
		lo = 1
	}
	for l := lo; l <= e.k(); l++ {
		as = append(as, e.acts[l])
	}
	return append(as, extra...)
}

// modelCube extracts the current-state part of the solver model as a
// complete cube plus its decoded state.
func (e *engine) modelCube() (cube, gcl.State) {
	assign := make([]bool, e.comp.NumInputs())
	c := make(cube, 0, len(e.curIDs))
	for _, id := range e.curIDs {
		v := e.solver.Value(e.vars[id])
		assign[id] = v
		c = append(c, clit{id: id, val: v})
	}
	return c, e.comp.DecodeState(assign, gcl.RoleCur)
}

// modelSucc decodes the next-state part of the solver model as a state —
// the concrete successor the model chose for a (possibly partial) primed
// cube assumption.
func (e *engine) modelSucc() gcl.State {
	assign := make([]bool, e.comp.NumInputs())
	for _, id := range e.curIDs {
		assign[id] = e.solver.Value(e.vars[e.nextIDs[id]])
	}
	return e.comp.DecodeState(assign, gcl.RoleCur)
}

// isInitial concretely evaluates the initial-state predicate on a state.
func (e *engine) isInitial(st gcl.State) bool {
	assign := make([]bool, e.comp.NumInputs())
	e.comp.EncodeState(st, gcl.RoleCur, assign)
	return e.comp.EvalLit(e.comp.Init, assign)
}

// blockQuery asks whether cube s has a predecessor inside Fi-1 ∧ ¬s:
// SAT?[F(i-1) ∧ ¬s ∧ T ∧ s']. On SAT it returns the predecessor; on UNSAT
// it returns the subset of s's literals appearing (primed) in the
// assumption core — the seed for generalization.
func (e *engine) blockQuery(i int, s cube) (found bool, pred cube, predSt, succSt gcl.State, core cube, err error) {
	// The negated cube is a disjunction, so it enters the solver as a
	// clause guarded by a fresh activation literal; the literal is pinned
	// false once the query is answered, retiring the clause for good.
	act := sat.Pos(e.solver.NewVar())
	notS := make([]sat.Lit, 0, len(s)+1)
	notS = append(notS, act.Not())
	for _, l := range s {
		notS = append(notS, e.litFor(l, false).Not())
	}
	e.solver.AddClause(notS...)
	defer e.solver.AddClause(act.Not())

	assumps := e.frameAssumps(i-1, act, e.tLit)
	for _, l := range s {
		assumps = append(assumps, e.litFor(l, true))
	}
	ok, err := e.query(assumps)
	if err != nil {
		return false, nil, nil, nil, nil, err
	}
	if ok {
		pred, predSt = e.modelCube()
		return true, pred, predSt, e.modelSucc(), nil, nil
	}
	inCore := make(map[sat.Lit]bool, len(s))
	for _, l := range e.solver.FinalConflict() {
		inCore[l] = true
	}
	for _, l := range s {
		if inCore[e.litFor(l, true)] {
			core = append(core, l)
		}
	}
	e.coreTotal += len(s)
	e.coreKept += len(core)
	e.cCoreTotal.Add(int64(len(s)))
	e.cCoreKept.Add(int64(len(core)))
	return false, nil, nil, nil, core, nil
}

// absQuery asks whether cube s has a predecessor outside s under the
// permanent clauses alone: SAT?[¬s ∧ T ∧ s']. UNSAT means ¬s is absolutely
// inductive — it holds initially (s is Init-disjoint) and is preserved by
// every transition relative only to clauses that themselves hold in all
// reachable states — so ¬s may be asserted permanently (F∞).
func (e *engine) absQuery(s cube) (bool, error) {
	act := sat.Pos(e.solver.NewVar())
	notS := make([]sat.Lit, 0, len(s)+1)
	notS = append(notS, act.Not())
	for _, l := range s {
		notS = append(notS, e.litFor(l, false).Not())
	}
	e.solver.AddClause(notS...)
	defer e.solver.AddClause(act.Not())

	assumps := make([]sat.Lit, 0, len(s)+2)
	assumps = append(assumps, act, e.tLit)
	for _, l := range s {
		assumps = append(assumps, e.litFor(l, true))
	}
	return e.query(assumps)
}

// addInf asserts ¬g permanently: it holds in every frame, present and
// future, so every later query is strengthened for free and the clause
// never needs propagation again.
func (e *engine) addInf(g cube) {
	e.inf = append(e.inf, &fclause{cube: g, level: int(^uint(0) >> 1)})
	cl := make([]sat.Lit, 0, len(g))
	for _, l := range g {
		cl = append(cl, e.litFor(l, false).Not())
	}
	e.solver.AddClause(cl...)
	// Every finite frame just gained a clause; invalidate all push stamps.
	e.addCnt[len(e.addCnt)-1]++
	e.progress()
}

// liftBad shrinks a complete property-violating state cube to the
// assumption core that still contradicts the property: every in-range
// state matching the shrunk cube violates P (the in-range constraints are
// permanent clauses), so blocking it excludes a whole family of bad states
// instead of one concrete state per query. Because no initial state is bad
// (the depth-0 check ran first), the lifted cube stays Init-disjoint.
func (e *engine) liftBad(s cube) (cube, error) {
	assumps := make([]sat.Lit, 0, len(s)+1)
	assumps = append(assumps, e.badLit.Not())
	for _, l := range s {
		assumps = append(assumps, e.litFor(l, false))
	}
	ok, err := e.query(assumps)
	if err != nil {
		return nil, err
	}
	if ok {
		panic("ic3: complete violating cube satisfies the property")
	}
	inCore := make(map[sat.Lit]bool, len(s))
	for _, l := range e.solver.FinalConflict() {
		inCore[l] = true
	}
	var out cube
	for _, l := range s {
		if inCore[e.litFor(l, false)] {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		return s, nil
	}
	return out, nil
}

// intersectsInit decides Init ∧ c ≠ ∅ syntactically: Init is a product of
// independent per-variable value sets, so the cube intersects it exactly
// when every variable it constrains still admits a permitted initial value
// on the fixed bits. On intersection e.witness holds one initial state
// inside the cube (any permitted value for unconstrained variables).
func (e *engine) intersectsInit(c cube) bool {
	e.gen++
	for _, l := range c {
		vi := e.varOf[l.id]
		if e.stampSc[vi] != e.gen {
			e.stampSc[vi] = e.gen
			e.maskSc[vi], e.wantSc[vi] = 0, 0
		}
		bit := uint32(1) << e.bitOf[l.id]
		e.maskSc[vi] |= bit
		if l.val {
			e.wantSc[vi] |= bit
		}
	}
	for vi, vals := range e.vinits {
		if e.stampSc[vi] != e.gen {
			e.witness[vi] = vals[0]
			continue
		}
		ok := false
		for _, w := range vals {
			if uint32(w)&e.maskSc[vi] == e.wantSc[vi] {
				e.witness[vi] = w
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// restoreInit grows g (a subset of full, which must itself be disjoint
// from the initial states) back until it is disjoint from Init, using each
// intersecting witness to pick a literal that excludes it. A blocking
// clause whose cube intersects Init would unsoundly strengthen the frames.
func (e *engine) restoreInit(full, g cube) cube {
	for len(g) < len(full) && e.intersectsInit(g) {
		added := false
		for _, l := range full {
			if g.contains(l.id) {
				continue
			}
			w := uint32(e.witness[e.varOf[l.id]])
			if (w>>e.bitOf[l.id])&1 == 1 != l.val {
				g = g.insert(l)
				added = true
				break
			}
		}
		if !added {
			// The witness agrees with every literal of full — but full is
			// disjoint from the initial states by construction.
			panic("ic3: cube unexpectedly intersects the initial states")
		}
	}
	return g
}

func (c cube) contains(id int) bool {
	i := sort.Search(len(c), func(i int) bool { return c[i].id >= id })
	return i < len(c) && c[i].id == id
}

func (c cube) insert(l clit) cube {
	i := sort.Search(len(c), func(i int) bool { return c[i].id >= l.id })
	c = append(c, clit{})
	copy(c[i+1:], c[i:])
	c[i] = l
	return c
}

// generalize shrinks the blocked cube s at frame i: first to the
// assumption core of the failed consecution query, then by trying to drop
// each remaining literal, keeping every drop whose smaller cube is still
// inductive relative to F(i-1) and still disjoint from Init.
func (e *engine) generalize(i int, s, core cube) (cube, error) {
	g := e.restoreInit(s, core)
	if e.opts.NoGeneralize {
		return g, nil
	}
	for idx := 0; idx < len(g) && len(g) > 1; {
		cand := g.without(idx)
		// A candidate touching the initial states can never become a
		// blocking clause, no matter what the consecution query says.
		if e.intersectsInit(cand) {
			idx++
			continue
		}
		found, _, _, _, c2, err := e.blockQuery(i, cand)
		if err != nil {
			return nil, err
		}
		if found {
			idx++
			continue
		}
		shrunk := e.restoreInit(cand, c2)
		if len(shrunk) >= len(g) {
			idx++
			continue
		}
		// One pass: keep idx in place; the literals ahead of it in the
		// shrunk cube were already present and still deserve a drop attempt,
		// the ones behind were tried against a superset and are unlikely to
		// drop now (a second pass rarely pays for its queries).
		g = shrunk
	}
	return g, nil
}

// addBlocked records clause ¬g at the given level, both in the frame
// bookkeeping and (guarded by the level's activation literal) in the solver.
func (e *engine) addBlocked(g cube, level int) *fclause {
	fc := &fclause{cube: g, level: level}
	e.frames[level] = append(e.frames[level], fc)
	e.addFrameClause(g, level)
	e.progress()
	return fc
}

func (e *engine) progress() {
	if e.opts.Progress == nil {
		return
	}
	clauses := 0
	for _, fr := range e.frames {
		clauses += len(fr)
	}
	e.opts.Progress(e.k(), clauses, len(e.inf), e.obligations, e.queries)
}

func (e *engine) addFrameClause(g cube, level int) {
	// The activation literal goes last: the solver watches the first two
	// literals, so asserting acts[level] — which every query does for a
	// whole range of levels — must not trigger a scan of every frame clause.
	cl := make([]sat.Lit, 0, len(g)+1)
	for _, l := range g {
		cl = append(cl, e.litFor(l, false).Not())
	}
	cl = append(cl, e.acts[level].Not())
	e.solver.AddClause(cl...)
	e.addCnt[level]++
}

// isBlocked reports whether s is already excluded from Fi by a recorded
// clause (syntactic subsumption over F∞ and levels ≥ i).
func (e *engine) isBlocked(s cube, i int) bool {
	for _, fc := range e.inf {
		if fc.cube.subsumes(s) {
			return true
		}
	}
	for l := i; l <= e.k(); l++ {
		for _, fc := range e.frames[l] {
			if fc.cube.subsumes(s) {
				return true
			}
		}
	}
	return false
}

// block discharges the obligation queue seeded with top. It returns a
// counterexample trace if an obligation chain reaches an initial state,
// or nil once every obligation is blocked.
func (e *engine) block(top *obligation) (*mc.Trace, error) {
	var h obHeap
	h.push(top)
	for h.Len() > 0 {
		e.gQueue.Set(int64(h.Len()))
		ob := h.pop()
		if e.isBlocked(ob.cube, ob.frame) {
			if ob.frame < e.k() {
				ob2 := *ob
				ob2.frame++
				ob2.seq = e.nextSeq()
				h.push(&ob2)
			}
			continue
		}
		e.obligations++
		e.cObls.Inc()
		found, pred, predSt, succSt, core, err := e.blockQuery(ob.frame, ob.cube)
		if err != nil {
			return nil, err
		}
		if found {
			if e.isInitial(predSt) {
				return e.traceFrom(predSt, succSt, ob), nil
			}
			h.push(&obligation{cube: pred, succ: succSt, frame: ob.frame - 1, parent: ob, seq: e.nextSeq()})
			ob.seq = e.nextSeq()
			h.push(ob)
			continue
		}
		g, err := e.generalize(ob.frame, ob.cube, core)
		if err != nil {
			return nil, err
		}
		// Push the freshly generalized clause as far out as it stays
		// inductive: strong clauses reach the frontier immediately instead
		// of waiting one propagation pass per frame.
		lvl, pushFailed := ob.frame, false
		for lvl < e.k() {
			up, _, _, _, _, err := e.blockQuery(lvl+1, g)
			if err != nil {
				return nil, err
			}
			if up {
				pushFailed = true
				break
			}
			lvl++
		}
		if !pushFailed {
			// The clause held all the way to the frontier; if it is
			// absolutely inductive it becomes permanent and never has to be
			// blocked, pushed, or propagated again.
			up, err := e.absQuery(g)
			if err != nil {
				return nil, err
			}
			if !up {
				e.addInf(g)
				continue
			}
		}
		fc := e.addBlocked(g, lvl)
		if pushFailed {
			fc.stamp = e.frameGen(lvl)
		}
		if lvl < e.k() {
			ob2 := *ob
			ob2.frame = lvl + 1
			ob2.seq = e.nextSeq()
			h.push(&ob2)
		}
	}
	return nil, nil
}

func (e *engine) nextSeq() int { e.obSeq++; return e.obSeq }

// traceFrom stitches the obligation chain into a concrete counterexample:
// the initial predecessor, then the witnessed completion of each
// obligation's cube up to the property violation. succ is the completion
// of ob's own cube from the query that found initSt; every later position
// uses the completion recorded when the chain link was created. Every
// adjacent pair was extracted from one model of the transition relation,
// so the trace replays on the concrete stepper even though the top cube is
// lifted to a partial bad cube.
func (e *engine) traceFrom(initSt, succ gcl.State, ob *obligation) *mc.Trace {
	out := []gcl.State{initSt}
	s := succ
	for o := ob; o != nil; o = o.parent {
		out = append(out, s)
		s = o.succ
	}
	return mc.NewTrace(out)
}

// propagate pushes clauses outward: a clause still inductive one frame
// later moves up. It reports convergence — some frame's clause set drained
// completely, so Fi == Fi+1 is an inductive invariant containing Init and
// excluded from ¬P for good.
func (e *engine) propagate() (bool, error) {
	for l := 1; l < e.k(); l++ {
		kept := e.frames[l][:0]
		for _, fc := range e.frames[l] {
			// The push query depends only on F(l), T and the cube; while no
			// clause was added at levels ≥ l since the last failed attempt,
			// the UNSAT answer cannot have changed.
			gen := e.frameGen(l)
			if fc.stamp == gen {
				kept = append(kept, fc)
				continue
			}
			// UNSAT?[F(l) ∧ T ∧ cube'] — the clause ¬cube holds at l+1.
			assumps := e.frameAssumps(l, e.tLit)
			for _, cl := range fc.cube {
				assumps = append(assumps, e.litFor(cl, true))
			}
			ok, err := e.query(assumps)
			if err != nil {
				return false, err
			}
			if ok {
				fc.stamp = gen
				kept = append(kept, fc)
				continue
			}
			fc.level = l + 1
			fc.stamp = 0
			e.frames[l+1] = append(e.frames[l+1], fc)
			e.addFrameClause(fc.cube, l+1)
		}
		e.frames[l] = kept
		if len(kept) == 0 {
			return true, nil
		}
	}
	return false, nil
}

// finish closes the open frame span, fills run.Stats through the shared
// tap path, and stamps the result with the finished run's statistics.
func (e *engine) finish(run *mc.Run, res *mc.Result) {
	e.frameSpan.End()
	e.frameSpan = nil
	bits := 0
	for _, v := range e.comp.Sys.StateVars() {
		bits += v.Type.Bits()
	}
	shrink := 0.0
	if e.coreTotal > 0 {
		shrink = float64(e.coreKept) / float64(e.coreTotal)
	}
	run.Stats.StateBits = bits
	run.Stats.Iterations = e.k()
	run.Stats.Obligations = e.obligations
	run.Stats.CoreShrink = shrink
	e.tap.FillStats(&run.Stats)
	res.Stats = run.Finish(res.Verdict)
}

// abort closes the open frame span and aborts the engine span with err.
func (e *engine) abort(run *mc.Run, err error) {
	e.frameSpan.End()
	e.frameSpan = nil
	run.Abort(err)
}

// CheckInvariant proves or refutes G(pred) unboundedly.
func CheckInvariant(comp *gcl.Compiled, prop mc.Property, opts Options) (*mc.Result, error) {
	return CheckInvariantCtx(context.Background(), comp, prop, opts)
}

// CheckInvariantCtx is CheckInvariant with cancellation plumbed into every
// SAT query; an interrupted query aborts the run with the context error and
// is never reported as a proof.
func CheckInvariantCtx(ctx context.Context, comp *gcl.Compiled, prop mc.Property, opts Options) (*mc.Result, error) {
	if prop.Kind != mc.Invariant {
		return nil, fmt.Errorf("ic3: CheckInvariant on %v property", prop.Kind)
	}
	run := mc.StartRun(opts.Obs, EngineName, prop.Name)
	e := newEngine(ctx, comp, prop, opts)
	res := &mc.Result{Property: prop}

	// Depth 0: an initial state violating the property.
	ok, err := e.query([]sat.Lit{e.initLit, e.badLit})
	if err != nil {
		e.abort(run, err)
		return nil, err
	}
	if ok {
		_, st := e.modelCube()
		res.Verdict = mc.Violated
		res.Trace = mc.NewTrace([]gcl.State{st})
		e.finish(run, res)
		return res, nil
	}

	e.newFrame()
	for {
		// Pull every bad state out of the frontier frame and block it.
		// The bad-state query deliberately omits the transition relation:
		// a violating state with no successors (deadlock) must be found too.
		for {
			ok, err := e.query(e.frameAssumps(e.k(), e.badLit))
			if err != nil {
				e.abort(run, err)
				return nil, err
			}
			if !ok {
				break
			}
			s, _ := e.modelCube()
			s, err = e.liftBad(s)
			if err != nil {
				e.abort(run, err)
				return nil, err
			}
			tr, err := e.block(&obligation{cube: s, frame: e.k(), seq: e.nextSeq()})
			if err != nil {
				e.abort(run, err)
				return nil, err
			}
			if tr != nil {
				res.Verdict = mc.Violated
				res.Trace = tr
				e.finish(run, res)
				return res, nil
			}
		}
		proved, err := e.propagate()
		if err != nil {
			e.abort(run, err)
			return nil, err
		}
		if proved {
			res.Verdict = mc.Holds
			e.finish(run, res)
			return res, nil
		}
		if e.opts.MaxFrames > 0 && e.k() >= e.opts.MaxFrames {
			res.Verdict = mc.HoldsBounded
			e.finish(run, res)
			return res, nil
		}
		e.newFrame()
	}
}
