package ic3

import (
	"context"
	"sync"
	"testing"

	"ttastartup/internal/gcl"
	"ttastartup/internal/mc"
)

// saturatingCounter builds a counter that climbs to cap and holds there.
func saturatingCounter(cap int) (*gcl.System, *gcl.Var) {
	sys := gcl.NewSystem("ctr")
	typ := gcl.IntType("c", 16)
	m := sys.Module("m")
	v := m.Var("v", typ, gcl.InitConst(0))
	m.Cmd("inc", gcl.Lt(gcl.X(v), gcl.C(typ, cap)), gcl.Set(v, gcl.AddSat(gcl.X(v), 1)))
	m.Cmd("hold", gcl.Eq(gcl.X(v), gcl.C(typ, cap)))
	sys.MustFinalize()
	return sys, v
}

// verifyTrace replays a counterexample on the concrete stepper: initial
// first state, valid transitions, violating final state.
func verifyTrace(t *testing.T, sys *gcl.System, prop mc.Property, tr *mc.Trace) {
	t.Helper()
	if tr == nil || tr.Len() == 0 {
		t.Fatal("missing counterexample trace")
	}
	stepper := gcl.NewStepper(sys)
	vars := sys.StateVars()
	first := gcl.Key(tr.States[0], vars)
	foundInit := false
	stepper.InitStates(func(st gcl.State) bool {
		if gcl.Key(st, vars) == first {
			foundInit = true
			return false
		}
		return true
	})
	if !foundInit {
		t.Errorf("trace does not start in an initial state: %s", sys.FormatState(tr.States[0]))
	}
	for i := 0; i+1 < tr.Len(); i++ {
		want := gcl.Key(tr.States[i+1], vars)
		ok := false
		stepper.Successors(tr.States[i], func(next gcl.State) bool {
			if gcl.Key(next, vars) == want {
				ok = true
				return false
			}
			return true
		})
		if !ok {
			t.Fatalf("trace step %d is not a valid transition", i)
		}
	}
	if gcl.Holds(prop.Pred, tr.States[tr.Len()-1]) {
		t.Error("final trace state does not violate the invariant")
	}
}

func TestIC3ProvesInvariant(t *testing.T) {
	sys, v := saturatingCounter(5)
	typ := gcl.IntType("c", 16)
	prop := mc.Property{Name: "v-le-5", Kind: mc.Invariant,
		Pred: gcl.Le(gcl.X(v), gcl.C(typ, 5))}
	res, err := CheckInvariant(sys.Compile(), prop, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Holds {
		t.Fatalf("verdict %v, want unbounded holds", res.Verdict)
	}
	if res.Stats.Iterations < 1 {
		t.Errorf("frame count %d, want >= 1", res.Stats.Iterations)
	}
	if res.Stats.SATQueries == 0 {
		t.Error("no SAT queries recorded")
	}
}

func TestIC3FindsCounterexample(t *testing.T) {
	sys, v := saturatingCounter(15)
	typ := gcl.IntType("c", 16)
	prop := mc.Property{Name: "v-lt-7", Kind: mc.Invariant,
		Pred: gcl.Lt(gcl.X(v), gcl.C(typ, 7))}
	res, err := CheckInvariant(sys.Compile(), prop, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Violated {
		t.Fatalf("verdict %v, want violated", res.Verdict)
	}
	verifyTrace(t, sys, prop, res.Trace)
	if res.Trace.Len() < 8 {
		t.Errorf("trace length %d, want >= 8 (7 increments)", res.Trace.Len())
	}
}

// TestIC3DeadlockViolation: the violating state has no successors; the
// bad-state query must still find it (it omits the transition relation).
func TestIC3DeadlockViolation(t *testing.T) {
	sys := gcl.NewSystem("dl")
	typ := gcl.IntType("c", 4)
	m := sys.Module("m")
	v := m.Var("v", typ, gcl.InitConst(0))
	m.Cmd("inc", gcl.Lt(gcl.X(v), gcl.C(typ, 3)), gcl.Set(v, gcl.AddSat(gcl.X(v), 1)))
	sys.MustFinalize()
	prop := mc.Property{Name: "v-lt-3", Kind: mc.Invariant,
		Pred: gcl.Lt(gcl.X(v), gcl.C(typ, 3))}
	res, err := CheckInvariant(sys.Compile(), prop, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mc.Violated {
		t.Fatalf("verdict %v, want violated (deadlocked bad state)", res.Verdict)
	}
	verifyTrace(t, sys, prop, res.Trace)
}

func TestIC3NoGeneralizeAgrees(t *testing.T) {
	sys, v := saturatingCounter(5)
	typ := gcl.IntType("c", 16)
	for _, pc := range []struct {
		prop  mc.Property
		holds bool
	}{
		{mc.Property{Name: "v-le-5", Kind: mc.Invariant, Pred: gcl.Le(gcl.X(v), gcl.C(typ, 5))}, true},
		{mc.Property{Name: "v-ne-4", Kind: mc.Invariant, Pred: gcl.Ne(gcl.X(v), gcl.C(typ, 4))}, false},
	} {
		res, err := CheckInvariant(sys.Compile(), pc.prop, Options{NoGeneralize: true})
		if err != nil {
			t.Fatal(err)
		}
		if pc.holds && res.Verdict != mc.Holds {
			t.Errorf("%s: verdict %v, want holds", pc.prop.Name, res.Verdict)
		}
		if !pc.holds {
			if res.Verdict != mc.Violated {
				t.Errorf("%s: verdict %v, want violated", pc.prop.Name, res.Verdict)
			} else {
				verifyTrace(t, sys, pc.prop, res.Trace)
			}
		}
	}
}

func TestIC3MaxFramesBounded(t *testing.T) {
	sys, v := saturatingCounter(5)
	typ := gcl.IntType("c", 16)
	prop := mc.Property{Name: "v-le-5", Kind: mc.Invariant,
		Pred: gcl.Le(gcl.X(v), gcl.C(typ, 5))}
	res, err := CheckInvariant(sys.Compile(), prop, Options{MaxFrames: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With a single frame no propagation can run, so the proof cannot
	// close; the verdict must stay bounded rather than claim Holds.
	if res.Verdict != mc.HoldsBounded {
		t.Fatalf("verdict %v, want holds-bounded at MaxFrames=1", res.Verdict)
	}
}

func TestIC3RejectsLiveness(t *testing.T) {
	sys, v := saturatingCounter(5)
	typ := gcl.IntType("c", 16)
	prop := mc.Property{Name: "live", Kind: mc.Eventually,
		Pred: gcl.Eq(gcl.X(v), gcl.C(typ, 5))}
	if _, err := CheckInvariant(sys.Compile(), prop, Options{}); err == nil {
		t.Fatal("expected an error for a liveness property")
	}
}

// trippingCtx reports cancellation after a fixed number of Err polls, so
// the run is interrupted deterministically in the middle of the query loop.
type trippingCtx struct {
	context.Context
	mu    sync.Mutex
	calls int
	trip  int
}

func (c *trippingCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls >= c.trip {
		return context.Canceled
	}
	return c.Context.Err()
}

// TestIC3CancelMidRun interrupts the engine mid-proof and requires the
// context error — never a PROVED verdict from an interrupted UNSAT query.
func TestIC3CancelMidRun(t *testing.T) {
	sys, v := saturatingCounter(12)
	typ := gcl.IntType("c", 16)
	prop := mc.Property{Name: "v-le-12", Kind: mc.Invariant,
		Pred: gcl.Le(gcl.X(v), gcl.C(typ, 12))}
	for trip := 1; trip <= 40; trip += 3 {
		ctx := &trippingCtx{Context: context.Background(), trip: trip}
		res, err := CheckInvariantCtx(ctx, sys.Compile(), prop, Options{})
		if err == nil {
			// The run may legitimately finish before the trip point once
			// trip exceeds the total number of polls; then it must agree
			// with the uninterrupted verdict.
			if res.Verdict != mc.Holds {
				t.Fatalf("trip %d: verdict %v, want holds", trip, res.Verdict)
			}
			continue
		}
		if err != context.Canceled {
			t.Fatalf("trip %d: err = %v, want context.Canceled", trip, err)
		}
		if res != nil {
			t.Fatalf("trip %d: interrupted run returned a result", trip)
		}
	}
	// An already-cancelled real context aborts before any verdict.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CheckInvariantCtx(cctx, sys.Compile(), prop, Options{}); err == nil {
		t.Fatal("expected error from a cancelled context")
	}
}
