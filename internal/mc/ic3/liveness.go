package ic3

import (
	"context"
	"fmt"

	"ttastartup/internal/gcl"
	"ttastartup/internal/gcl/l2s"
	"ttastartup/internal/mc"
)

// CheckEventually proves or refutes AF(pred) without a depth bound by
// running the invariant engine on the liveness-to-safety product
// (internal/gcl/l2s): IC3 proves the product's "no closed p-free loop"
// invariant, which is equivalence-preserving for the eventuality. On
// Violated the product counterexample is projected back to a concrete
// lasso of the source system, back-edge included, so replay machinery
// sees an ordinary eventuality trace.
func CheckEventually(sys *gcl.System, prop mc.Property, opts Options) (*mc.Result, error) {
	return CheckEventuallyCtx(context.Background(), sys, prop, opts)
}

// CheckEventuallyCtx is CheckEventually with cancellation plumbed through
// the underlying invariant run.
func CheckEventuallyCtx(ctx context.Context, sys *gcl.System, prop mc.Property, opts Options) (*mc.Result, error) {
	if prop.Kind != mc.Eventually {
		return nil, fmt.Errorf("ic3: CheckEventually on %v property", prop.Kind)
	}
	prod, err := l2s.Transform(sys, prop.Pred)
	if err != nil {
		return nil, err
	}
	safe := mc.Property{Name: prop.Name, Kind: mc.Invariant, Pred: prod.Safe}
	res, err := CheckInvariantCtx(ctx, prod.Sys.Compile(), safe, opts)
	if err != nil {
		return nil, err
	}
	res.Property = prop
	if res.Verdict == mc.Violated {
		states, loopsTo, perr := prod.ProjectLasso(res.Trace.States)
		if perr != nil {
			return nil, perr
		}
		res.Trace = &mc.Trace{States: states, LoopsTo: loopsTo}
	}
	return res, nil
}
