package circuit

import (
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	b := New()
	if got := b.And(True, True); got != True {
		t.Errorf("And(1,1) = %v, want True", got)
	}
	if got := b.And(True, False); got != False {
		t.Errorf("And(1,0) = %v, want False", got)
	}
	if got := b.Or(False, False); got != False {
		t.Errorf("Or(0,0) = %v, want False", got)
	}
	if got := True.Not(); got != False {
		t.Errorf("Not(True) = %v, want False", got)
	}
}

func TestStructuralHashing(t *testing.T) {
	b := New()
	x, y := b.Input(), b.Input()
	a1 := b.And(x, y)
	a2 := b.And(y, x)
	if a1 != a2 {
		t.Errorf("And not commutative under hashing: %v vs %v", a1, a2)
	}
	n := b.NumNodes()
	_ = b.And(x, y)
	if b.NumNodes() != n {
		t.Errorf("duplicate And created a node")
	}
}

func TestAndAbsorption(t *testing.T) {
	b := New()
	x := b.Input()
	if got := b.And(x, x); got != x {
		t.Errorf("And(x,x) = %v, want x", got)
	}
	if got := b.And(x, x.Not()); got != False {
		t.Errorf("And(x,!x) = %v, want False", got)
	}
	if got := b.And(x, True); got != x {
		t.Errorf("And(x,1) = %v, want x", got)
	}
	if got := b.And(x, False); got != False {
		t.Errorf("And(x,0) = %v, want False", got)
	}
}

// TestGateTruthTables exhaustively checks every 2-input gate.
func TestGateTruthTables(t *testing.T) {
	type gate struct {
		name string
		mk   func(b *Builder, x, y Lit) Lit
		fn   func(x, y bool) bool
	}
	gates := []gate{
		{"And", (*Builder).And, func(x, y bool) bool { return x && y }},
		{"Or", (*Builder).Or, func(x, y bool) bool { return x || y }},
		{"Xor", (*Builder).Xor, func(x, y bool) bool { return x != y }},
		{"Iff", (*Builder).Iff, func(x, y bool) bool { return x == y }},
		{"Implies", (*Builder).Implies, func(x, y bool) bool { return !x || y }},
	}
	for _, g := range gates {
		b := New()
		x, y := b.Input(), b.Input()
		l := g.mk(b, x, y)
		for _, vx := range []bool{false, true} {
			for _, vy := range []bool{false, true} {
				got := b.Eval(l, []bool{vx, vy})
				if want := g.fn(vx, vy); got != want {
					t.Errorf("%s(%v,%v) = %v, want %v", g.name, vx, vy, got, want)
				}
			}
		}
	}
}

func TestIteTruthTable(t *testing.T) {
	b := New()
	c, x, y := b.Input(), b.Input(), b.Input()
	l := b.Ite(c, x, y)
	for mask := range 8 {
		in := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		want := in[2]
		if in[0] {
			want = in[1]
		}
		if got := b.Eval(l, in); got != want {
			t.Errorf("Ite%v = %v, want %v", in, got, want)
		}
	}
}

func TestAndAllOrAll(t *testing.T) {
	b := New()
	if b.AndAll(nil) != True {
		t.Error("AndAll(nil) != True")
	}
	if b.OrAll(nil) != False {
		t.Error("OrAll(nil) != False")
	}
	ins := []Lit{b.Input(), b.Input(), b.Input(), b.Input(), b.Input()}
	and := b.AndAll(ins)
	or := b.OrAll(ins)
	for mask := range 32 {
		assign := make([]bool, 5)
		all, any := true, false
		for i := range 5 {
			assign[i] = mask&(1<<i) != 0
			all = all && assign[i]
			any = any || assign[i]
		}
		if got := b.Eval(and, assign); got != all {
			t.Errorf("AndAll mask=%d got %v want %v", mask, got, all)
		}
		if got := b.Eval(or, assign); got != any {
			t.Errorf("OrAll mask=%d got %v want %v", mask, got, any)
		}
	}
}

func TestSupport(t *testing.T) {
	b := New()
	x, y, z := b.Input(), b.Input(), b.Input()
	_ = z
	l := b.Or(b.And(x, y), x)
	got := b.Support(l)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Support = %v, want [0 1]", got)
	}
	if s := b.Support(True); len(s) != 0 {
		t.Errorf("Support(True) = %v, want empty", s)
	}
}

func TestInputID(t *testing.T) {
	b := New()
	x := b.Input()
	y := b.Input()
	if id, ok := b.InputID(x); !ok || id != 0 {
		t.Errorf("InputID(x) = %d,%v", id, ok)
	}
	if id, ok := b.InputID(y.Not()); !ok || id != 1 {
		t.Errorf("InputID(!y) = %d,%v", id, ok)
	}
	if _, ok := b.InputID(b.And(x, y)); ok {
		t.Error("InputID of an AND gate should fail")
	}
	if _, ok := b.InputID(True); ok {
		t.Error("InputID of a constant should fail")
	}
}

// Property: Eval distributes over construction for random formulas.
func TestEvalRandomFormulas(t *testing.T) {
	f := func(ops []uint8, assign [6]bool) bool {
		b := New()
		ins := make([]Lit, 6)
		for i := range ins {
			ins[i] = b.Input()
		}
		// Build a random formula as a stack machine over the inputs, and a
		// mirror boolean computation.
		lits := append([]Lit{}, ins...)
		vals := make([]bool, 6)
		for i := range vals {
			vals[i] = assign[i]
		}
		for _, op := range ops {
			i := int(op) % len(lits)
			j := int(op>>3) % len(lits)
			switch op % 4 {
			case 0:
				lits = append(lits, b.And(lits[i], lits[j]))
				vals = append(vals, vals[i] && vals[j])
			case 1:
				lits = append(lits, b.Or(lits[i], lits[j]))
				vals = append(vals, vals[i] || vals[j])
			case 2:
				lits = append(lits, b.Xor(lits[i], lits[j]))
				vals = append(vals, vals[i] != vals[j])
			case 3:
				lits = append(lits, lits[i].Not())
				vals = append(vals, !vals[i])
			}
		}
		top := lits[len(lits)-1]
		return b.Eval(top, assign[:]) == vals[len(vals)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
