// Package circuit provides an and-inverter-graph (AIG) representation of
// boolean functions with structural hashing.
//
// A circuit is a DAG whose internal nodes are two-input AND gates and whose
// leaves are primary inputs; edges may be complemented. Circuits are the
// shared intermediate form between the guarded-command compiler (package
// gcl), the BDD engine (package bdd), and the CNF generator used for
// SAT-based bounded model checking (package mc/bmc).
package circuit

import (
	"fmt"
	"strconv"
)

// Lit is a literal: a reference to a circuit node with an optional
// complement bit in the LSB. The zero value is the constant false.
type Lit uint32

// Constant literals.
const (
	False Lit = 0
	True  Lit = 1
)

// Not returns the complement of l.
func (l Lit) Not() Lit { return l ^ 1 }

// node returns the node index of l.
func (l Lit) node() uint32 { return uint32(l) >> 1 }

// neg reports whether l is complemented.
func (l Lit) neg() bool { return l&1 == 1 }

// IsConst reports whether l is one of the constants True or False.
func (l Lit) IsConst() bool { return l.node() == 0 }

// Complemented reports whether l is a complemented edge.
func (l Lit) Complemented() bool { return l.neg() }

// String renders the literal for debugging.
func (l Lit) String() string {
	switch l {
	case False:
		return "0"
	case True:
		return "1"
	}
	s := strconv.FormatUint(uint64(l.node()), 10)
	if l.neg() {
		return "!n" + s
	}
	return "n" + s
}

// nodeRec is a single AND gate or input. Inputs have in0 == in1 == 0 and a
// nonzero inputID+1 stored in aux.
type nodeRec struct {
	in0, in1 Lit    // operands; in0 >= in1 canonically for AND gates
	aux      uint32 // for inputs: inputID+1; for AND gates: 0
}

// Builder constructs a circuit incrementally. The zero value is NOT usable;
// call New.
type Builder struct {
	nodes  []nodeRec
	hash   map[[2]Lit]Lit
	inputs []Lit // literal for each primary input, by input ID
}

// New returns an empty circuit builder.
func New() *Builder {
	b := &Builder{
		nodes: make([]nodeRec, 1, 1024), // node 0 is the constant
		hash:  make(map[[2]Lit]Lit, 1024),
	}
	return b
}

// NumNodes returns the number of nodes, including the constant node.
func (b *Builder) NumNodes() int { return len(b.nodes) }

// NumInputs returns the number of primary inputs created so far.
func (b *Builder) NumInputs() int { return len(b.inputs) }

// Input creates a fresh primary input and returns its (positive) literal.
func (b *Builder) Input() Lit {
	id := uint32(len(b.inputs))
	l := b.push(nodeRec{aux: id + 1})
	b.inputs = append(b.inputs, l)
	return l
}

// InputLit returns the literal for input id (panics if out of range).
func (b *Builder) InputLit(id int) Lit { return b.inputs[id] }

// InputID returns the primary-input ID of l's node and true, or 0 and false
// if l does not refer to an input node.
func (b *Builder) InputID(l Lit) (int, bool) {
	n := b.nodes[l.node()]
	if l.node() != 0 && n.aux != 0 {
		return int(n.aux - 1), true
	}
	return 0, false
}

// Fanins returns the operand literals of an AND node, or ok=false for
// inputs and constants.
func (b *Builder) Fanins(l Lit) (Lit, Lit, bool) {
	if l.node() == 0 {
		return 0, 0, false
	}
	n := b.nodes[l.node()]
	if n.aux != 0 {
		return 0, 0, false
	}
	return n.in0, n.in1, true
}

func (b *Builder) push(n nodeRec) Lit {
	b.nodes = append(b.nodes, n)
	return Lit(uint32(len(b.nodes)-1) << 1)
}

// And returns a literal for x AND y, with constant folding and structural
// hashing.
func (b *Builder) And(x, y Lit) Lit {
	// Constant folding and trivial cases.
	switch {
	case x == False || y == False || x == y.Not():
		return False
	case x == True:
		return y
	case y == True || x == y:
		return x
	}
	if x < y { // canonical operand order
		x, y = y, x
	}
	key := [2]Lit{x, y}
	if l, ok := b.hash[key]; ok {
		return l
	}
	l := b.push(nodeRec{in0: x, in1: y})
	b.hash[key] = l
	return l
}

// Or returns x OR y.
func (b *Builder) Or(x, y Lit) Lit { return b.And(x.Not(), y.Not()).Not() }

// Xor returns x XOR y.
func (b *Builder) Xor(x, y Lit) Lit {
	return b.Or(b.And(x, y.Not()), b.And(x.Not(), y))
}

// Iff returns x <-> y.
func (b *Builder) Iff(x, y Lit) Lit { return b.Xor(x, y).Not() }

// Implies returns x -> y.
func (b *Builder) Implies(x, y Lit) Lit { return b.Or(x.Not(), y) }

// Ite returns if-then-else: c ? t : e.
func (b *Builder) Ite(c, t, e Lit) Lit {
	return b.Or(b.And(c, t), b.And(c.Not(), e))
}

// AndAll conjoins all literals (True for an empty list) using a balanced
// tree to keep circuit depth low.
func (b *Builder) AndAll(ls []Lit) Lit {
	switch len(ls) {
	case 0:
		return True
	case 1:
		return ls[0]
	}
	mid := len(ls) / 2
	return b.And(b.AndAll(ls[:mid]), b.AndAll(ls[mid:]))
}

// OrAll disjoins all literals (False for an empty list).
func (b *Builder) OrAll(ls []Lit) Lit {
	switch len(ls) {
	case 0:
		return False
	case 1:
		return ls[0]
	}
	mid := len(ls) / 2
	return b.Or(b.OrAll(ls[:mid]), b.OrAll(ls[mid:]))
}

// Eval evaluates literal l under the given input assignment (indexed by
// input ID). The assignment must cover every input in l's cone.
func (b *Builder) Eval(l Lit, inputs []bool) bool {
	memo := make(map[uint32]bool, 64)
	return b.evalRec(l, inputs, memo)
}

func (b *Builder) evalRec(l Lit, inputs []bool, memo map[uint32]bool) bool {
	n := l.node()
	if n == 0 {
		return l.neg() // !False == True
	}
	v, ok := memo[n]
	if !ok {
		rec := b.nodes[n]
		if rec.aux != 0 {
			id := int(rec.aux - 1)
			if id >= len(inputs) {
				panic(fmt.Sprintf("circuit: eval of input %d with only %d assignments", id, len(inputs)))
			}
			v = inputs[id]
		} else {
			v = b.evalRec(rec.in0, inputs, memo) && b.evalRec(rec.in1, inputs, memo)
		}
		memo[n] = v
	}
	if l.neg() {
		return !v
	}
	return v
}

// Support returns the sorted list of input IDs in the cone of l.
func (b *Builder) Support(l Lit) []int {
	seen := make(map[uint32]bool, 64)
	var ids []int
	inSupport := make(map[int]bool, 16)
	var walk func(Lit)
	walk = func(l Lit) {
		n := l.node()
		if n == 0 || seen[n] {
			return
		}
		seen[n] = true
		rec := b.nodes[n]
		if rec.aux != 0 {
			id := int(rec.aux - 1)
			if !inSupport[id] {
				inSupport[id] = true
				ids = append(ids, id)
			}
			return
		}
		walk(rec.in0)
		walk(rec.in1)
	}
	walk(l)
	sortInts(ids)
	return ids
}

// ConeSize returns the number of distinct AND nodes in the cone of l.
func (b *Builder) ConeSize(l Lit) int {
	seen := make(map[uint32]bool, 64)
	count := 0
	var walk func(Lit)
	walk = func(l Lit) {
		n := l.node()
		if n == 0 || seen[n] {
			return
		}
		seen[n] = true
		rec := b.nodes[n]
		if rec.aux != 0 {
			return
		}
		count++
		walk(rec.in0)
		walk(rec.in1)
	}
	walk(l)
	return count
}

func sortInts(a []int) {
	// Insertion sort: supports are small and this avoids importing sort for
	// a hot path used only in diagnostics.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
