package circuit

import (
	"testing"
	"testing/quick"
)

// evalBV evaluates a bit vector to an integer under an input assignment.
func evalBV(b *Builder, bv BV, assign []bool) int {
	v := 0
	for i, l := range bv {
		if b.Eval(l, assign) {
			v |= 1 << i
		}
	}
	return v
}

// mkInputBV allocates a w-bit input vector.
func mkInputBV(b *Builder, w int) BV {
	bv := make(BV, w)
	for i := range bv {
		bv[i] = b.Input()
	}
	return bv
}

// encode writes the w low bits of v into assign starting at off.
func encode(assign []bool, off, w, v int) {
	for i := range w {
		assign[off+i] = v&(1<<i) != 0
	}
}

func TestConstBVRoundTrip(t *testing.T) {
	for _, v := range []int{0, 1, 5, 13, 255} {
		bv := ConstBV(v, 8)
		got, ok := BVValue(bv)
		if !ok || got != v {
			t.Errorf("BVValue(ConstBV(%d)) = %d,%v", v, got, ok)
		}
	}
	b := New()
	x := b.Input()
	if _, ok := BVValue(BV{x}); ok {
		t.Error("BVValue of non-constant should fail")
	}
}

func TestCompareExhaustive(t *testing.T) {
	const w = 4
	b := New()
	x := mkInputBV(b, w)
	y := mkInputBV(b, w)
	eq := b.EqBV(x, y)
	lt := b.LtBV(x, y)
	le := b.LeBV(x, y)
	assign := make([]bool, 2*w)
	for vx := range 1 << w {
		for vy := range 1 << w {
			encode(assign, 0, w, vx)
			encode(assign, w, w, vy)
			if got := b.Eval(eq, assign); got != (vx == vy) {
				t.Fatalf("Eq(%d,%d) = %v", vx, vy, got)
			}
			if got := b.Eval(lt, assign); got != (vx < vy) {
				t.Fatalf("Lt(%d,%d) = %v", vx, vy, got)
			}
			if got := b.Eval(le, assign); got != (vx <= vy) {
				t.Fatalf("Le(%d,%d) = %v", vx, vy, got)
			}
		}
	}
}

func TestAddExhaustive(t *testing.T) {
	const w = 4
	b := New()
	x := mkInputBV(b, w)
	y := mkInputBV(b, w)
	sum := b.AddBV(x, y)
	assign := make([]bool, 2*w)
	for vx := range 1 << w {
		for vy := range 1 << w {
			encode(assign, 0, w, vx)
			encode(assign, w, w, vy)
			if got := evalBV(b, sum, assign); got != (vx+vy)&(1<<w-1) {
				t.Fatalf("Add(%d,%d) = %d", vx, vy, got)
			}
		}
	}
}

func TestAddConstExhaustive(t *testing.T) {
	const w = 5
	for _, k := range []int{0, 1, 3, 17, 31} {
		b := New()
		x := mkInputBV(b, w)
		sum := b.AddConstBV(x, k)
		assign := make([]bool, w)
		for vx := range 1 << w {
			encode(assign, 0, w, vx)
			if got := evalBV(b, sum, assign); got != (vx+k)&(1<<w-1) {
				t.Fatalf("AddConst(%d,%d) = %d", vx, k, got)
			}
		}
	}
}

func TestMuxExhaustive(t *testing.T) {
	const w = 3
	b := New()
	c := b.Input()
	x := mkInputBV(b, w)
	y := mkInputBV(b, w)
	m := b.MuxBV(c, x, y)
	assign := make([]bool, 1+2*w)
	for _, vc := range []bool{false, true} {
		for vx := range 1 << w {
			for vy := range 1 << w {
				assign[0] = vc
				encode(assign, 1, w, vx)
				encode(assign, 1+w, w, vy)
				want := vy
				if vc {
					want = vx
				}
				if got := evalBV(b, m, assign); got != want {
					t.Fatalf("Mux(%v,%d,%d) = %d", vc, vx, vy, got)
				}
			}
		}
	}
}

func TestInRange(t *testing.T) {
	const w = 4
	for _, card := range []int{1, 3, 7, 10, 16} {
		b := New()
		x := mkInputBV(b, w)
		ir := b.InRangeBV(x, card)
		assign := make([]bool, w)
		for vx := range 1 << w {
			encode(assign, 0, w, vx)
			if got := b.Eval(ir, assign); got != (vx < card) {
				t.Fatalf("InRange(%d, card=%d) = %v", vx, card, got)
			}
		}
	}
}

// Property: x+y == y+x as circuits, checked by evaluation on random inputs.
func TestAddCommutes(t *testing.T) {
	f := func(vx, vy uint8) bool {
		const w = 8
		b := New()
		x := mkInputBV(b, w)
		y := mkInputBV(b, w)
		s1 := b.AddBV(x, y)
		s2 := b.AddBV(y, x)
		assign := make([]bool, 2*w)
		encode(assign, 0, w, int(vx))
		encode(assign, w, w, int(vy))
		return evalBV(b, s1, assign) == evalBV(b, s2, assign)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
