package circuit

// BV is a little-endian bit vector of literals (index 0 is the LSB). Bit
// vectors are the word-level layer the guarded-command compiler lowers
// finite-domain expressions onto.
type BV []Lit

// ConstBV returns an n-bit constant vector for value v (truncated to n bits).
func ConstBV(v, n int) BV {
	bv := make(BV, n)
	for i := range n {
		if v&(1<<i) != 0 {
			bv[i] = True
		} else {
			bv[i] = False
		}
	}
	return bv
}

// BVValue decodes a constant bit vector; ok is false if any bit is
// non-constant.
func BVValue(bv BV) (int, bool) {
	v := 0
	for i, l := range bv {
		switch l {
		case True:
			v |= 1 << i
		case False:
		default:
			return 0, false
		}
	}
	return v, true
}

// EqBV returns a literal that is true iff x == y. The vectors must have the
// same width.
func (b *Builder) EqBV(x, y BV) Lit {
	mustSameWidth(x, y)
	parts := make([]Lit, len(x))
	for i := range x {
		parts[i] = b.Iff(x[i], y[i])
	}
	return b.AndAll(parts)
}

// LtBV returns a literal that is true iff x < y (unsigned).
func (b *Builder) LtBV(x, y BV) Lit {
	mustSameWidth(x, y)
	// Ripple from LSB: lt_{i+1} = (!x_i & y_i) | (x_i <-> y_i) & lt_i.
	lt := False
	for i := range x {
		bitLt := b.And(x[i].Not(), y[i])
		eq := b.Iff(x[i], y[i])
		lt = b.Or(bitLt, b.And(eq, lt))
	}
	return lt
}

// LeBV returns a literal that is true iff x <= y (unsigned).
func (b *Builder) LeBV(x, y BV) Lit { return b.LtBV(y, x).Not() }

// MuxBV returns c ? t : e, bitwise. The vectors must have the same width.
func (b *Builder) MuxBV(c Lit, t, e BV) BV {
	mustSameWidth(t, e)
	out := make(BV, len(t))
	for i := range t {
		out[i] = b.Ite(c, t[i], e[i])
	}
	return out
}

// AddConstBV returns x + k (unsigned, truncated to the width of x).
func (b *Builder) AddConstBV(x BV, k int) BV {
	out := make(BV, len(x))
	carryIn := ConstBV(k, len(x))
	carry := False
	for i := range x {
		sum := b.Xor(b.Xor(x[i], carryIn[i]), carry)
		carry = b.Or(b.And(x[i], carryIn[i]), b.And(carry, b.Xor(x[i], carryIn[i])))
		out[i] = sum
	}
	return out
}

// AddBV returns x + y (unsigned, truncated to the width of x).
func (b *Builder) AddBV(x, y BV) BV {
	mustSameWidth(x, y)
	out := make(BV, len(x))
	carry := False
	for i := range x {
		sum := b.Xor(b.Xor(x[i], y[i]), carry)
		carry = b.Or(b.And(x[i], y[i]), b.And(carry, b.Xor(x[i], y[i])))
		out[i] = sum
	}
	return out
}

// InRangeBV returns a literal that is true iff the value of x is strictly
// less than card (the domain-membership constraint for a variable whose
// cardinality is not a power of two).
func (b *Builder) InRangeBV(x BV, card int) Lit {
	if card >= 1<<len(x) {
		return True
	}
	return b.LtBV(x, ConstBV(card, len(x)))
}

func mustSameWidth(x, y BV) {
	if len(x) != len(y) {
		panic("circuit: bit-vector width mismatch")
	}
}
