package bdd

import "testing"

// BenchmarkBuildRandomFunctions measures And/Or/Xor construction with the
// unique table and operation cache.
func BenchmarkBuildRandomFunctions(b *testing.B) {
	for b.Loop() {
		m := New(24, Config{})
		for s := range 64 {
			_ = buildRandom(m, uint16(s))
		}
	}
}

// BenchmarkAndExists measures the relational product on a synthetic
// relation: a chained adjacency over interleaved variable pairs.
func BenchmarkAndExists(b *testing.B) {
	const nvars = 32
	m := New(nvars, Config{})
	// rel: conjunction of (x_{2i} <-> x_{2i+1}) — a frame-like relation.
	rel := Ref(True)
	for i := 0; i < nvars; i += 2 {
		rel = m.And(rel, m.Iff(m.Var(i), m.Var(i+1)))
	}
	set := buildRandom(m, 0x77)
	var cur []int
	for i := 0; i < nvars; i += 2 {
		cur = append(cur, i)
	}
	cube := m.Cube(cur)
	b.ResetTimer()
	for b.Loop() {
		_ = m.AndExists(set, rel, cube)
	}
}

// BenchmarkSatCount measures exact model counting.
func BenchmarkSatCount(b *testing.B) {
	const nvars = 24
	m := New(nvars, Config{})
	f := buildRandom(m, 0x1234)
	vars := make([]int, nvars)
	for i := range vars {
		vars[i] = i
	}
	b.ResetTimer()
	for b.Loop() {
		_ = m.SatCount(f, vars)
	}
}

// BenchmarkPopulateAndGC measures building a garbage-heavy manager plus a
// full mark-and-sweep cycle (timed together: collection alone is a small
// fraction, and untimed per-iteration setup misleads b.Loop).
func BenchmarkPopulateAndGC(b *testing.B) {
	for b.Loop() {
		m := New(20, Config{})
		keep := m.Protect(buildRandom(m, 1))
		for s := range 200 {
			_ = buildRandom(m, uint16(s))
		}
		if m.GC() == 0 {
			b.Fatal("nothing collected")
		}
		_ = keep
	}
}
