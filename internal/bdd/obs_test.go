package bdd

import (
	"testing"

	"ttastartup/internal/obs"
)

// TestObsPublishing checks the manager's counter plumbing: cache probes
// and GCs land in the attached registry, and SnapshotStats agrees.
func TestObsPublishing(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	m := New(8, Config{})
	m.SetObs(obs.Scope{Reg: reg, Trace: tr})

	// Build something with sharing so the op cache gets hits.
	f := m.Var(0)
	for i := 1; i < 8; i++ {
		f = m.Protect(m.Xor(f, m.Var(i)))
	}
	for i := 0; i < 4; i++ {
		m.Ite(f, m.Var(1), m.Var(2)) // repeated: second and later probes hit
	}
	m.GC(f)
	m.PublishObs()

	st := m.SnapshotStats()
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("cache counters empty: %+v", st)
	}
	if st.GCs != 1 {
		t.Fatalf("GCs = %d, want 1", st.GCs)
	}
	snap := reg.Snapshot()
	if snap[obs.MBDDCacheHits] != int64(st.CacheHits) ||
		snap[obs.MBDDCacheMisses] != int64(st.CacheMisses) {
		t.Fatalf("registry cache counters %d/%d disagree with stats %+v",
			snap[obs.MBDDCacheHits], snap[obs.MBDDCacheMisses], st)
	}
	if snap[obs.MBDDGCs] != 1 {
		t.Fatalf("registry gc count = %d", snap[obs.MBDDGCs])
	}
	if snap[obs.MBDDGCPauseUS+".count"] != 1 {
		t.Fatalf("gc pause histogram count = %d", snap[obs.MBDDGCPauseUS+".count"])
	}
	if snap[obs.MBDDNodes] != int64(st.Nodes) || snap[obs.MBDDNodes] == 0 {
		t.Fatalf("node gauge %d vs stats %d", snap[obs.MBDDNodes], st.Nodes)
	}
	if tr.EventCount() == 0 {
		t.Fatal("GC emitted no span")
	}

	// A second publish must flush only the delta, not re-add totals.
	m.PublishObs()
	if got := reg.Snapshot()[obs.MBDDCacheHits]; got != int64(st.CacheHits) {
		t.Fatalf("double publish re-added totals: %d vs %d", got, st.CacheHits)
	}
}

// TestObsDisabled pins the no-scope fast path: everything still works
// and SnapshotStats still counts.
func TestObsDisabled(t *testing.T) {
	m := New(4, Config{})
	f := m.Protect(m.And(m.Var(0), m.Var(1)))
	m.And(m.Var(0), m.Var(1))
	m.GC(f)
	m.PublishObs()
	st := m.SnapshotStats()
	if st.CacheHits+st.CacheMisses == 0 || st.GCs != 1 {
		t.Fatalf("stats not counted without scope: %+v", st)
	}
}
