package bdd

import (
	"math/big"
	"testing"
	"testing/quick"
)

// evalAll exhaustively compares a BDD against a reference boolean function
// over nvars variables.
func evalAll(t *testing.T, m *Manager, f Ref, nvars int, want func([]bool) bool, name string) {
	t.Helper()
	assign := make([]bool, nvars)
	for mask := 0; mask < 1<<nvars; mask++ {
		for i := range nvars {
			assign[i] = mask&(1<<i) != 0
		}
		if got := m.Eval(f, assign); got != want(assign) {
			t.Fatalf("%s: mismatch at %v: got %v", name, assign, got)
		}
	}
}

func TestBasicOps(t *testing.T) {
	m := New(3, Config{})
	x, y, z := m.Var(0), m.Var(1), m.Var(2)

	evalAll(t, m, m.And(x, y), 3, func(a []bool) bool { return a[0] && a[1] }, "and")
	evalAll(t, m, m.Or(x, z), 3, func(a []bool) bool { return a[0] || a[2] }, "or")
	evalAll(t, m, m.Not(y), 3, func(a []bool) bool { return !a[1] }, "not")
	evalAll(t, m, m.Xor(x, y), 3, func(a []bool) bool { return a[0] != a[1] }, "xor")
	evalAll(t, m, m.Iff(y, z), 3, func(a []bool) bool { return a[1] == a[2] }, "iff")
	evalAll(t, m, m.Implies(x, z), 3, func(a []bool) bool { return !a[0] || a[2] }, "implies")
	evalAll(t, m, m.Diff(x, y), 3, func(a []bool) bool { return a[0] && !a[1] }, "diff")
	evalAll(t, m, m.Ite(x, y, z), 3, func(a []bool) bool {
		if a[0] {
			return a[1]
		}
		return a[2]
	}, "ite")
	evalAll(t, m, m.NVar(1), 3, func(a []bool) bool { return !a[1] }, "nvar")
}

func TestCanonicity(t *testing.T) {
	m := New(4, Config{})
	x, y := m.Var(0), m.Var(1)
	// (x AND y) built two different ways must be the same node.
	a := m.And(x, y)
	b := m.Not(m.Or(m.Not(x), m.Not(y)))
	if a != b {
		t.Errorf("De Morgan forms differ: %d vs %d", a, b)
	}
	// Tautologies collapse to True.
	if got := m.Or(x, m.Not(x)); got != True {
		t.Errorf("x OR !x = %d, want True", got)
	}
	if got := m.And(x, m.Not(x)); got != False {
		t.Errorf("x AND !x = %d, want False", got)
	}
}

func TestExists(t *testing.T) {
	m := New(4, Config{})
	x, y, z := m.Var(0), m.Var(1), m.Var(2)
	f := m.And(m.Or(x, y), m.Or(m.Not(x), z))
	// ∃x. f = (y ∨ z ∨ (y∧z))... compute reference by expansion.
	cube := m.Cube([]int{0})
	g := m.Exists(f, cube)
	evalAll(t, m, g, 4, func(a []bool) bool {
		f0 := (false || a[1]) && (true || a[2])
		f1 := (true) && (!true || a[2]) || false
		_ = f1
		v0 := (a[1]) && true // x=false: (0∨y)∧(1∨z)
		v1 := true && (a[2]) // x=true:  (1∨y)∧(0∨z)
		_ = f0
		return v0 || v1
	}, "exists-x")

	// Quantifying all support yields a constant.
	all := m.Cube([]int{0, 1, 2})
	if got := m.Exists(f, all); got != True {
		t.Errorf("exists all vars of satisfiable f = %d, want True", got)
	}
	if got := m.Exists(False, all); got != False {
		t.Errorf("exists of False = %d", got)
	}
	// Quantifying variables outside the support is the identity.
	out := m.Cube([]int{3})
	if got := m.Exists(f, out); got != f {
		t.Errorf("exists over non-support changed f")
	}
}

func TestAndExistsEqualsComposition(t *testing.T) {
	f := func(seed uint16) bool {
		m := New(5, Config{})
		a := buildRandom(m, seed)
		b := buildRandom(m, seed^0x5aa5)
		cube := m.Cube([]int{1, 3})
		got := m.AndExists(a, b, cube)
		want := m.Exists(m.And(a, b), cube)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// buildRandom deterministically builds a pseudo-random function over the
// manager's variables from a seed.
func buildRandom(m *Manager, seed uint16) Ref {
	r := Ref(True)
	s := uint32(seed)*2654435761 + 1
	for i := 0; i < m.NumVars(); i++ {
		s = s*1664525 + 1013904223
		v := m.Var(i)
		if s&1 != 0 {
			v = m.Not(v)
		}
		switch (s >> 1) % 3 {
		case 0:
			r = m.And(r, v)
		case 1:
			r = m.Or(r, v)
		case 2:
			r = m.Xor(r, v)
		}
	}
	return r
}

func TestPermute(t *testing.T) {
	// Interleaved layout: cur bits at even indices, next at odd.
	m := New(6, Config{})
	curToNext := m.NewPermutation([]int{1, 1, 3, 3, 5, 5})
	f := m.And(m.Var(0), m.Or(m.Var(2), m.Not(m.Var(4)))) // cur-only
	g := m.Permute(f, curToNext)
	evalAll(t, m, g, 6, func(a []bool) bool { return a[1] && (a[3] || !a[5]) }, "permute")

	nextToCur := m.NewPermutation([]int{0, 0, 2, 2, 4, 4})
	back := m.Permute(g, nextToCur)
	if back != f {
		t.Errorf("round-trip permute changed function")
	}
}

func TestPermuteRejectsNonMonotone(t *testing.T) {
	m := New(4, Config{})
	f := m.And(m.Var(0), m.Var(1))
	// Swapping 0 and 1 is not order-preserving for a function using both.
	p := m.NewPermutation([]int{1, 0, 2, 3})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-monotone permutation")
		}
	}()
	m.Permute(f, p)
}

func TestSatCount(t *testing.T) {
	m := New(6, Config{})
	x, y := m.Var(0), m.Var(2)
	f := m.And(x, y)
	vars := []int{0, 2, 4}
	if got := m.SatCount(f, vars); got.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("SatCount(x∧y over 3 vars) = %v, want 2", got)
	}
	if got := m.SatCount(True, vars); got.Cmp(big.NewInt(8)) != 0 {
		t.Errorf("SatCount(True over 3 vars) = %v, want 8", got)
	}
	if got := m.SatCount(False, vars); got.Sign() != 0 {
		t.Errorf("SatCount(False) = %v, want 0", got)
	}
	or := m.Or(x, y)
	if got := m.SatCount(or, vars); got.Cmp(big.NewInt(6)) != 0 {
		t.Errorf("SatCount(x∨y over 3 vars) = %v, want 6", got)
	}
}

func TestSatCountAgainstBruteForce(t *testing.T) {
	f := func(seed uint16) bool {
		const n = 5
		m := New(n, Config{})
		g := buildRandom(m, seed)
		count := 0
		assign := make([]bool, n)
		for mask := 0; mask < 1<<n; mask++ {
			for i := range n {
				assign[i] = mask&(1<<i) != 0
			}
			if m.Eval(g, assign) {
				count++
			}
		}
		vars := []int{0, 1, 2, 3, 4}
		return m.SatCount(g, vars).Cmp(big.NewInt(int64(count))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPickCube(t *testing.T) {
	m := New(4, Config{})
	f := m.And(m.Var(1), m.Not(m.Var(3)))
	cube := m.PickCube(f)
	if cube == nil {
		t.Fatal("PickCube returned nil for satisfiable f")
	}
	assign := make([]bool, 4)
	for i, v := range cube {
		assign[i] = v == 1
	}
	if !m.Eval(f, assign) {
		t.Errorf("PickCube assignment %v does not satisfy f", cube)
	}
	if m.PickCube(False) != nil {
		t.Error("PickCube(False) should be nil")
	}
}

func TestSupportAndSize(t *testing.T) {
	m := New(5, Config{})
	f := m.And(m.Var(0), m.Or(m.Var(3), m.Var(4)))
	sup := m.Support(f)
	want := []int{0, 3, 4}
	if len(sup) != len(want) {
		t.Fatalf("Support = %v", sup)
	}
	for i := range want {
		if sup[i] != want[i] {
			t.Fatalf("Support = %v, want %v", sup, want)
		}
	}
	if m.Size(True) != 0 {
		t.Error("Size(True) != 0")
	}
	if m.Size(f) == 0 {
		t.Error("Size(f) == 0")
	}
}

func TestGCKeepsProtected(t *testing.T) {
	m := New(8, Config{})
	f := buildRandom(m, 0xbeef)
	m.Protect(f)
	// Build garbage.
	for s := range 50 {
		_ = buildRandom(m, uint16(s))
	}
	before := m.NumNodes()
	freed := m.GC()
	if freed == 0 {
		t.Error("GC freed nothing despite garbage")
	}
	if m.NumNodes() >= before {
		t.Error("node count did not drop")
	}
	// f still evaluates correctly and operations still work.
	evalAll(t, m, m.Not(m.Not(f)), 8, func(a []bool) bool { return m.Eval(f, a) }, "post-gc")
	// Rebuilding an identical function must find the same canonical nodes.
	g := buildRandom(m, 0xbeef)
	if g != f {
		t.Errorf("canonicity lost after GC: %d vs %d", f, g)
	}
	m.Unprotect(f)
}

func TestGCExtraRoots(t *testing.T) {
	m := New(6, Config{})
	f := buildRandom(m, 0x1234)
	m.GC(f)
	g := buildRandom(m, 0x1234)
	if g != f {
		t.Error("extra root was collected")
	}
}

func TestGCReuseAfterFree(t *testing.T) {
	m := New(6, Config{})
	_ = buildRandom(m, 1)
	m.GC()
	// Allocations after GC must reuse freed slots and stay canonical.
	a := m.And(m.Var(0), m.Var(1))
	b := m.And(m.Var(0), m.Var(1))
	if a != b {
		t.Error("canonicity broken after slot reuse")
	}
}

func TestUnprotectUnprotectedPanics(t *testing.T) {
	m := New(2, Config{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Unprotect(m.Var(0))
}

// Property: BDD ops agree with direct boolean semantics on random formulas.
func TestRandomFormulaSemantics(t *testing.T) {
	f := func(ops []uint8, seed uint8) bool {
		const n = 4
		m := New(n, Config{})
		refs := []Ref{m.Var(0), m.Var(1), m.Var(2), m.Var(3)}
		fns := []func([]bool) bool{
			func(a []bool) bool { return a[0] },
			func(a []bool) bool { return a[1] },
			func(a []bool) bool { return a[2] },
			func(a []bool) bool { return a[3] },
		}
		for _, op := range ops {
			i := int(op) % len(refs)
			j := int(op>>2) % len(refs)
			fi, fj := fns[i], fns[j]
			switch op % 3 {
			case 0:
				refs = append(refs, m.And(refs[i], refs[j]))
				fns = append(fns, func(a []bool) bool { return fi(a) && fj(a) })
			case 1:
				refs = append(refs, m.Or(refs[i], refs[j]))
				fns = append(fns, func(a []bool) bool { return fi(a) || fj(a) })
			case 2:
				refs = append(refs, m.Xor(refs[i], m.Not(refs[j])))
				fns = append(fns, func(a []bool) bool { return fi(a) == fj(a) })
			}
		}
		top := len(refs) - 1
		assign := make([]bool, n)
		for mask := 0; mask < 1<<n; mask++ {
			for i := range n {
				assign[i] = mask&(1<<i) != 0
			}
			if m.Eval(refs[top], assign) != fns[top](assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestExistsAgainstBruteForce checks quantification semantics point-wise:
// ∃x.f at an assignment is f with x=0 or x=1.
func TestExistsAgainstBruteForce(t *testing.T) {
	f := func(seed uint16, cubeBits uint8) bool {
		const n = 5
		m := New(n, Config{})
		g := buildRandom(m, seed)
		var qvars []int
		for i := range n {
			if cubeBits&(1<<i) != 0 {
				qvars = append(qvars, i)
			}
		}
		q := m.Exists(g, m.Cube(qvars))
		assign := make([]bool, n)
		for mask := 0; mask < 1<<n; mask++ {
			for i := range n {
				assign[i] = mask&(1<<i) != 0
			}
			// Reference: disjunction of g over all assignments to qvars.
			want := false
			sub := make([]bool, n)
			copy(sub, assign)
			for qm := 0; qm < 1<<len(qvars); qm++ {
				for k, v := range qvars {
					sub[v] = qm&(1<<k) != 0
				}
				if m.Eval(g, sub) {
					want = true
					break
				}
			}
			if m.Eval(q, assign) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
