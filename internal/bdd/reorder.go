package bdd

import (
	"sort"
	"time"

	"ttastartup/internal/obs"
)

// Dynamic variable reordering: an adjacent-level swap primitive that is
// correct under hash-consing, and Rudell-style sifting of variable blocks
// on top of it.
//
// The swap rewrites every node at the upper level IN PLACE, so external
// Refs keep denoting the same boolean function throughout — callers never
// see a reorder happen except through Level/VarLevel. Reordering has the
// same caller contract as GC (it starts and ends with one): no unprotected
// intermediate results may be live when it runs. The manager therefore
// never reorders inside an operation; it only flags a reorder as pending
// (mkNode, on pool growth) and runs it when the owner reaches a safe point
// and calls Reorder or ReorderIfPending.
//
// Blocks: SetGroups declares variables that must stay adjacent, in order —
// the symbolic engine groups each current-state bit with its next-state
// bit so the cur<->next renamings stay order-preserving however the pairs
// themselves move. Ungrouped variables sift alone.

// ReorderStats summarises one reordering pass.
type ReorderStats struct {
	Swaps       int           // adjacent-level swaps performed
	NodesBefore int           // live nodes after the leading GC
	NodesAfter  int           // live nodes after the trailing GC
	Duration    time.Duration // wall time of the whole pass
}

// reorderState is the transient bookkeeping of one sifting pass.
type reorderState struct {
	ref   []int32 // per-node reference counts (protected roots included)
	lvl   [][]Ref // per-level node lists; entries with a stale level are dead
	count []int   // exact live-node count per level
	total int     // sum of count
	swaps int
}

// block is a maximal run of variables that move as a unit.
type block struct {
	vars []int32 // variable indices in top-to-bottom level order
}

// SetGroups declares variable groups for reordering: the variables of each
// group stay level-adjacent, in the given order, and sift as one block.
// Each group must currently occupy adjacent levels in declaration order
// (true for any grouping declared before the order has changed, such as
// the compiler's interleaved cur/next pairs). Variables in no group are
// singleton blocks.
func (m *Manager) SetGroups(groups [][]int) {
	seen := make([]bool, m.nvars)
	gs := make([][]int32, 0, len(groups))
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		gg := make([]int32, len(g))
		for i, v := range g {
			if v < 0 || v >= int(m.nvars) {
				panic("bdd: group variable out of range")
			}
			if seen[v] {
				panic("bdd: variable appears in more than one group")
			}
			seen[v] = true
			gg[i] = int32(v)
			if i > 0 && m.var2level[gg[i]] != m.var2level[gg[i-1]]+1 {
				panic("bdd: group variables must occupy adjacent levels")
			}
		}
		gs = append(gs, gg)
	}
	m.groups = gs
}

// ReorderPending reports whether automatic reordering has been armed by
// node-pool growth and is waiting for a safe point.
func (m *Manager) ReorderPending() bool { return m.reorderPending }

// ReorderIfPending runs Reorder when one is pending and reports whether it
// did. Callers pass the same extra roots they would pass to GC.
func (m *Manager) ReorderIfPending(extra ...Ref) (ReorderStats, bool) {
	if !m.reorderPending {
		return ReorderStats{}, false
	}
	return m.Reorder(extra...), true
}

// Reorder runs one pair-grouped sifting pass over the whole order. Like
// GC, it must only be called when no unprotected intermediate results are
// still needed; extra roots are protected for the duration. External Refs
// remain valid: nodes are rewritten in place and keep their function.
func (m *Manager) Reorder(extra ...Ref) ReorderStats {
	start := time.Now()
	sp := m.obs.tracer.Start(obs.CatBDD, "reorder")
	m.GC(extra...)
	before := m.NumNodes()
	m.inReorder = true
	swaps := m.sift(extra)
	m.inReorder = false
	m.GC(extra...)
	after := m.NumNodes()
	m.reorderPending = false
	m.reorderThreshold = 2 * after
	if m.reorderThreshold < m.reorderStart {
		m.reorderThreshold = m.reorderStart
	}
	st := ReorderStats{Swaps: swaps, NodesBefore: before, NodesAfter: after, Duration: time.Since(start)}
	m.reorders++
	m.reorderSwaps += swaps
	m.reorderGain += before - after
	m.reorderPause += st.Duration
	m.publishReorder(sp, st)
	return st
}

// sift runs one full sifting pass: every block, largest first, is moved
// through the whole order and parked at its best position.
func (m *Manager) sift(extra []Ref) int {
	rs := &reorderState{}
	m.rs = rs
	defer func() { m.rs = nil }()
	m.buildReorderState(extra)
	blocks := m.buildBlocks()
	if len(blocks) < 2 {
		return 0
	}
	size := func(b *block) int {
		s := 0
		for _, v := range b.vars {
			s += rs.count[m.var2level[v]]
		}
		return s
	}
	order := make([]*block, len(blocks))
	copy(order, blocks)
	sort.SliceStable(order, func(i, j int) bool { return size(order[i]) > size(order[j]) })
	for _, b := range order {
		m.siftBlock(blocks, b)
	}
	return rs.swaps
}

// buildReorderState scans the pool once: per-level node lists, exact level
// sizes, and reference counts (children plus protected/extra roots). It
// runs right after a GC, so every non-free node is live.
func (m *Manager) buildReorderState(extra []Ref) {
	rs := m.rs
	rs.ref = make([]int32, len(m.nodes))
	rs.lvl = make([][]Ref, m.nvars)
	rs.count = make([]int, m.nvars)
	isFree := make([]bool, len(m.nodes))
	for _, f := range m.free {
		isFree[f] = true
	}
	for i := 2; i < len(m.nodes); i++ {
		if isFree[i] {
			continue
		}
		n := &m.nodes[i]
		rs.lvl[n.level] = append(rs.lvl[n.level], Ref(i))
		rs.count[n.level]++
		rs.total++
		rs.ref[n.low]++
		rs.ref[n.high]++
	}
	for r, c := range m.roots {
		rs.ref[r] += int32(c)
	}
	for _, r := range extra {
		rs.ref[r]++
	}
}

// buildBlocks derives the block sequence, in level order, from the
// registered groups.
func (m *Manager) buildBlocks() []*block {
	groupOf := make([]int, m.nvars)
	for i := range groupOf {
		groupOf[i] = -1
	}
	for gi, g := range m.groups {
		for _, v := range g {
			groupOf[v] = gi
		}
	}
	var blocks []*block
	for l := int32(0); l < m.nvars; {
		v := m.level2var[l]
		gi := groupOf[v]
		if gi < 0 {
			blocks = append(blocks, &block{vars: []int32{v}})
			l++
			continue
		}
		g := m.groups[gi]
		if g[0] != v {
			panic("bdd: reorder: group no longer level-adjacent")
		}
		for i, gv := range g {
			if m.level2var[l+int32(i)] != gv {
				panic("bdd: reorder: group no longer level-adjacent")
			}
		}
		blocks = append(blocks, &block{vars: append([]int32(nil), g...)})
		l += int32(len(g))
	}
	return blocks
}

// siftBlock moves b through every position (nearer end first), tracking
// the position with the smallest pool, and parks it there. Movement in a
// direction stops early when the pool exceeds ReorderMaxGrowth times the
// best size seen.
func (m *Manager) siftBlock(blocks []*block, b *block) {
	rs := m.rs
	pos := -1
	for i, bb := range blocks {
		if bb == b {
			pos = i
			break
		}
	}
	n := len(blocks)
	best, bestPos := rs.total, pos
	limit := func() bool {
		if rs.total < best {
			best, bestPos = rs.total, pos
		}
		return float64(rs.total) > m.reorderMaxGrowth*float64(best)
	}
	down := func() bool { m.swapBlocks(blocks, pos); pos++; return limit() }
	up := func() bool { m.swapBlocks(blocks, pos-1); pos--; return limit() }
	if n-1-pos <= pos {
		for pos < n-1 {
			if down() {
				break
			}
		}
		for pos > 0 {
			if up() {
				break
			}
		}
	} else {
		for pos > 0 {
			if up() {
				break
			}
		}
		for pos < n-1 {
			if down() {
				break
			}
		}
	}
	for pos < bestPos {
		m.swapBlocks(blocks, pos)
		pos++
	}
	for pos > bestPos {
		m.swapBlocks(blocks, pos-1)
		pos--
	}
}

// swapBlocks exchanges the adjacent blocks at positions i and i+1 with
// len(a)*len(b) adjacent-level swaps, preserving both internal orders.
func (m *Manager) swapBlocks(blocks []*block, i int) {
	a, b := blocks[i], blocks[i+1]
	top := int32(0)
	for _, bb := range blocks[:i] {
		top += int32(len(bb.vars))
	}
	ka, kb := len(a.vars), len(b.vars)
	for x := ka - 1; x >= 0; x-- {
		for y := 0; y < kb; y++ {
			m.swapAdjacent(top + int32(x+y))
		}
	}
	blocks[i], blocks[i+1] = b, a
}

// swapAdjacent exchanges levels l and l+1. Writing A for the variable at
// level l and B for the one at l+1: B-nodes move up to level l unchanged;
// an A-node that does not depend on B moves down to level l+1; an A-node f
// that does is rewritten in place as a B-node at level l over the four
// grandcofactors, with its A-cofactors rebuilt at level l+1. At most one
// of the rebuilt cofactors can collapse below level l+1 (both collapsing
// would mean f's original cofactors were equal), so a rewritten node keeps
// a level-l+1 child and can never collide with a surviving B-node — the
// unique table stays canonical without touching any external Ref.
func (m *Manager) swapAdjacent(l int32) {
	rs := m.rs
	va, vb := m.level2var[l], m.level2var[l+1]
	oldA, oldB := rs.lvl[l], rs.lvl[l+1]

	// Unhook both levels from the unique table (dead entries skipped).
	for _, f := range oldA {
		if m.nodes[f].level == l {
			m.unhook(f)
		}
	}
	for _, g := range oldB {
		if m.nodes[g].level == l+1 {
			m.unhook(g)
		}
	}

	upper := make([]Ref, 0, len(oldB)+len(oldA))
	lower := make([]Ref, 0, len(oldA))

	// Pass 0: B-nodes rise to level l.
	for _, g := range oldB {
		if m.nodes[g].level != l+1 {
			continue
		}
		m.nodes[g].level = l
		m.hook(g)
		upper = append(upper, g)
	}
	// Pass 1: A-nodes independent of B sink to level l+1. They go into the
	// table before any rebuild so pass 2 shares them instead of duplicating.
	for _, f := range oldA {
		n := &m.nodes[f]
		if n.level != l {
			continue
		}
		if !(n.low > 1 && m.nodes[n.low].level == l) && !(n.high > 1 && m.nodes[n.high].level == l) {
			n.level = l + 1
			m.hook(f)
			lower = append(lower, f)
		}
	}
	// Pass 2: A-nodes depending on B are rewritten in place.
	var orphans []Ref
	for _, f := range oldA {
		n := &m.nodes[f]
		if n.level != l { // moved in pass 1 or dead
			continue
		}
		f0, f1 := n.low, n.high
		dep0 := f0 > 1 && m.nodes[f0].level == l
		dep1 := f1 > 1 && m.nodes[f1].level == l
		if !dep0 && !dep1 {
			continue // moved in pass 1
		}
		var f00, f01, f10, f11 Ref
		if dep0 {
			b0 := &m.nodes[f0]
			f00, f01 = b0.low, b0.high
		} else {
			f00, f01 = f0, f0
		}
		if dep1 {
			b1 := &m.nodes[f1]
			f10, f11 = b1.low, b1.high
		} else {
			f10, f11 = f1, f1
		}
		newLow := m.reorderMk(l+1, f00, f10, &lower)
		newHigh := m.reorderMk(l+1, f01, f11, &lower)
		rs.ref[newLow]++
		rs.ref[newHigh]++
		rs.ref[f0]--
		rs.ref[f1]--
		orphans = append(orphans, f0, f1)
		// reorderMk may have grown m.nodes and moved the backing array, so
		// the write must re-resolve f — the pointer above can be stale.
		nf := &m.nodes[f]
		nf.low, nf.high = newLow, newHigh // level stays l; the label is now B
		m.hook(f)
		upper = append(upper, f)
	}

	rs.lvl[l], rs.lvl[l+1] = upper, lower
	oldTotal := rs.count[l] + rs.count[l+1]
	rs.count[l], rs.count[l+1] = len(upper), len(lower)
	rs.total += rs.count[l] + rs.count[l+1] - oldTotal

	m.level2var[l], m.level2var[l+1] = vb, va
	m.var2level[va], m.var2level[vb] = l+1, l

	// Free nodes orphaned by the rewrites (cascading into their cones) so
	// sifting sees exact sizes, not sizes inflated by garbage.
	for _, c := range orphans {
		m.reorderKill(c)
	}
	rs.swaps++
}

// reorderMk is mkNode for the swap primitive: it bypasses the freelist (so
// dead level-list entries can never be confused with reused slots), skips
// the node limit (transient growth is bounded by the sifting policy), and
// maintains the reorder bookkeeping.
func (m *Manager) reorderMk(level int32, low, high Ref, list *[]Ref) Ref {
	if low == high {
		return low
	}
	h := hash3(level, int32(low), int32(high)) & uint64(len(m.buckets)-1)
	for i := m.buckets[h]; i >= 0; i = m.nodes[i].next {
		n := &m.nodes[i]
		if n.level == level && n.low == low && n.high == high {
			return Ref(i)
		}
	}
	m.nodes = append(m.nodes, node{level: level, low: low, high: high, next: m.buckets[h]})
	r := Ref(len(m.nodes) - 1)
	m.buckets[h] = int32(r)
	rs := m.rs
	rs.ref = append(rs.ref, 0)
	rs.ref[low]++
	rs.ref[high]++
	*list = append(*list, r)
	rs.count[level]++
	rs.total++
	return r
}

// reorderKill frees r if its reference count reached zero, cascading into
// its children. Freed slots are only sentinel-marked (level -1); the GC at
// the end of Reorder returns them to the freelist.
func (m *Manager) reorderKill(r Ref) {
	rs := m.rs
	// The level>=0 guard makes kill idempotent: several rewrites can orphan
	// the same shared node, queueing it more than once.
	for r > 1 && rs.ref[r] <= 0 && m.nodes[r].level >= 0 {
		n := &m.nodes[r]
		m.unhook(r)
		rs.count[n.level]--
		rs.total--
		low, high := n.low, n.high
		n.level = -1
		rs.ref[low]--
		rs.ref[high]--
		m.reorderKill(low)
		r = high
	}
}

// unhook removes f from its unique-table bucket chain.
func (m *Manager) unhook(f Ref) {
	n := &m.nodes[f]
	h := hash3(n.level, int32(n.low), int32(n.high)) & uint64(len(m.buckets)-1)
	if m.buckets[h] == int32(f) {
		m.buckets[h] = n.next
		n.next = -1
		return
	}
	for i := m.buckets[h]; i >= 0; i = m.nodes[i].next {
		if m.nodes[i].next == int32(f) {
			m.nodes[i].next = n.next
			n.next = -1
			return
		}
	}
	panic("bdd: reorder: node missing from unique table")
}

// hook inserts f into the unique-table bucket for its current triple.
func (m *Manager) hook(f Ref) {
	n := &m.nodes[f]
	h := hash3(n.level, int32(n.low), int32(n.high)) & uint64(len(m.buckets)-1)
	n.next = m.buckets[h]
	m.buckets[h] = int32(f)
}
