// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with a chained unique table, a direct-mapped operation cache, explicit
// mark-and-sweep garbage collection, quantification, relational products,
// order-preserving renaming, and exact model counting. It is the backend of
// the symbolic model checker (package mc/symbolic).
package bdd

import (
	"errors"
	"fmt"
	"time"
)

// Ref identifies a BDD node in a Manager. The constants False and True are
// the terminal nodes of every manager.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

// ErrNodeLimit is thrown (via panic, recovered at engine boundaries) when a
// manager exceeds its configured node capacity.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

type node struct {
	level     int32 // position in the current order; terminals use level = nvars
	low, high Ref
	next      int32 // unique-table chain
}

type cacheEntry struct {
	op      int32
	f, g, h Ref
	result  Ref
}

// Cache operation codes.
const (
	opIte int32 = iota + 1
	opExists
	opAndExists
	opPermute
)

// Manager owns the node pool of a BDD universe. Variables start at level
// i = variable index (0 is topmost); dynamic reordering (see reorder.go)
// may move them, with var2level/level2var tracking the mapping. All public
// APIs speak variable indices; node levels are internal.
type Manager struct {
	nvars   int32
	nodes   []node
	free    []Ref // freelist from GC
	buckets []int32
	cache   []cacheEntry

	var2level []int32   // variable index -> level
	level2var []int32   // level -> variable index
	groups    [][]int32 // variable groups kept adjacent while sifting

	roots     map[Ref]int // protected external references
	nodeLimit int
	gcCount   int
	permEpoch int32 // distinguishes permutations in the op cache

	// Dynamic-reordering state (reorder.go).
	autoReorder      bool
	reorderStart     int
	reorderMaxGrowth float64
	reorderThreshold int
	reorderPending   bool
	inReorder        bool
	rs               *reorderState
	reorders         int
	reorderSwaps     int
	reorderGain      int
	reorderPause     time.Duration

	// Stats: plain fields — the manager is single-threaded and the cache
	// probe is the hottest path in the symbolic engine. PublishObs flushes
	// deltas to an attached obs registry at safe points.
	gcFreed     int
	gcPause     time.Duration
	cacheHits   int
	cacheMisses int

	obs obsSinks
}

// Config tunes a Manager.
type Config struct {
	// NodeLimit caps the node pool (0 = default 48M nodes, roughly 1 GiB).
	NodeLimit int
	// CacheSize is the operation-cache entry count, rounded up to a power
	// of two (0 = default 1<<20).
	CacheSize int
	// AutoReorder arms dynamic variable reordering: once the node pool
	// grows past the reorder threshold, the manager flags a reorder as
	// pending, and the next safe point (ReorderIfPending, or a manual
	// Reorder) runs pair-grouped sifting. Reordering has the same caller
	// contract as GC: no unprotected intermediate results may be live.
	AutoReorder bool
	// ReorderStart is the live-node count that arms the first automatic
	// reorder (0 = default 1<<14). After each reorder the threshold is
	// doubled relative to the post-reorder pool so reordering amortises.
	ReorderStart int
	// ReorderMaxGrowth bounds transient growth while sifting: a block
	// stops moving in a direction once the pool exceeds this factor of the
	// best size seen (0 = default 1.2).
	ReorderMaxGrowth float64
}

// New returns a manager with nvars boolean variables.
func New(nvars int, cfg Config) *Manager {
	if cfg.NodeLimit == 0 {
		cfg.NodeLimit = 48 << 20
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1 << 20
	}
	if cfg.ReorderStart == 0 {
		cfg.ReorderStart = 1 << 14
	}
	if cfg.ReorderMaxGrowth == 0 {
		cfg.ReorderMaxGrowth = 1.2
	}
	cacheSize := 1
	for cacheSize < cfg.CacheSize {
		cacheSize <<= 1
	}
	m := &Manager{
		nvars:            int32(nvars),
		nodes:            make([]node, 2, 1<<16),
		buckets:          make([]int32, 1<<14),
		cache:            make([]cacheEntry, cacheSize),
		roots:            make(map[Ref]int),
		nodeLimit:        cfg.NodeLimit,
		var2level:        make([]int32, nvars),
		level2var:        make([]int32, nvars),
		autoReorder:      cfg.AutoReorder,
		reorderStart:     cfg.ReorderStart,
		reorderMaxGrowth: cfg.ReorderMaxGrowth,
		reorderThreshold: cfg.ReorderStart,
	}
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	for i := 0; i < nvars; i++ {
		m.var2level[i] = int32(i)
		m.level2var[i] = int32(i)
	}
	m.nodes[False] = node{level: m.nvars, low: False, high: False, next: -1}
	m.nodes[True] = node{level: m.nvars, low: True, high: True, next: -1}
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return int(m.nvars) }

// NumNodes returns the number of live (allocated, not freed) nodes,
// including the two terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) - len(m.free) }

// Level returns the level (position in the current variable order)
// labelling f, or NumVars for terminals. Until a reorder has run, level
// and variable index coincide; use VarLevel/VarAt to convert afterwards.
func (m *Manager) Level(f Ref) int { return int(m.nodes[f].level) }

// VarLevel returns the current level of variable i.
func (m *Manager) VarLevel(i int) int { return int(m.var2level[i]) }

// VarAt returns the variable index at the given level.
func (m *Manager) VarAt(level int) int { return int(m.level2var[level]) }

// VarOrder returns the current order as a level-indexed slice of variable
// indices (a copy).
func (m *Manager) VarOrder() []int {
	out := make([]int, m.nvars)
	for l, v := range m.level2var {
		out[l] = int(v)
	}
	return out
}

// Low and High return the cofactors of a non-terminal node.
func (m *Manager) Low(f Ref) Ref { return m.nodes[f].low }

// High returns the positive cofactor of a non-terminal node.
func (m *Manager) High(f Ref) Ref { return m.nodes[f].high }

// Var returns the BDD for variable i.
func (m *Manager) Var(i int) Ref {
	return m.mkNode(m.var2level[i], False, True)
}

// NVar returns the BDD for the negation of variable i.
func (m *Manager) NVar(i int) Ref {
	return m.mkNode(m.var2level[i], True, False)
}

func hash3(a, b, c int32) uint64 {
	h := uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)*0xbf58476d1ce4e5b9 ^ uint64(c)*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// mkNode returns the canonical node (level, low, high), creating it if
// needed.
func (m *Manager) mkNode(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	h := hash3(level, int32(low), int32(high)) & uint64(len(m.buckets)-1)
	for i := m.buckets[h]; i >= 0; i = m.nodes[i].next {
		n := &m.nodes[i]
		if n.level == level && n.low == low && n.high == high {
			return Ref(i)
		}
	}
	var r Ref
	if len(m.free) > 0 {
		r = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		m.nodes[r] = node{level: level, low: low, high: high, next: m.buckets[h]}
	} else {
		if len(m.nodes) >= m.nodeLimit {
			panic(ErrNodeLimit)
		}
		m.nodes = append(m.nodes, node{level: level, low: low, high: high, next: m.buckets[h]})
		r = Ref(len(m.nodes) - 1)
	}
	m.buckets[h] = int32(r)
	if m.autoReorder && !m.reorderPending && m.NumNodes() >= m.reorderThreshold {
		m.reorderPending = true
	}
	if m.NumNodes() > 2*len(m.buckets) {
		m.rehash()
	}
	return r
}

func (m *Manager) rehash() {
	m.buckets = make([]int32, len(m.buckets)*2)
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	freeSet := make(map[Ref]bool, len(m.free))
	for _, f := range m.free {
		freeSet[f] = true
	}
	for i := 2; i < len(m.nodes); i++ {
		if freeSet[Ref(i)] {
			continue
		}
		n := &m.nodes[i]
		if n.level < 0 { // freed during a reorder, not yet collected
			continue
		}
		h := hash3(n.level, int32(n.low), int32(n.high)) & uint64(len(m.buckets)-1)
		n.next = m.buckets[h]
		m.buckets[h] = int32(i)
	}
}

func (m *Manager) cacheLookup(op int32, f, g, h Ref) (Ref, bool) {
	e := &m.cache[hash3(op^int32(f), int32(g), int32(h))&uint64(len(m.cache)-1)]
	if e.op == op && e.f == f && e.g == g && e.h == h {
		m.cacheHits++
		return e.result, true
	}
	m.cacheMisses++
	return 0, false
}

func (m *Manager) cacheStore(op int32, f, g, h, result Ref) {
	e := &m.cache[hash3(op^int32(f), int32(g), int32(h))&uint64(len(m.cache)-1)]
	*e = cacheEntry{op: op, f: f, g: g, h: h, result: result}
}

// Ite computes if-then-else: f ? g : h.
func (m *Manager) Ite(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	if r, ok := m.cacheLookup(opIte, f, g, h); ok {
		return r
	}
	nf, ng, nh := &m.nodes[f], &m.nodes[g], &m.nodes[h]
	top := nf.level
	if ng.level < top {
		top = ng.level
	}
	if nh.level < top {
		top = nh.level
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r0 := m.Ite(f0, g0, h0)
	r1 := m.Ite(f1, g1, h1)
	r := m.mkNode(top, r0, r1)
	m.cacheStore(opIte, f, g, h, r)
	return r
}

func (m *Manager) cofactors(f Ref, level int32) (Ref, Ref) {
	n := &m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.low, n.high
}

// Not returns the negation of f.
func (m *Manager) Not(f Ref) Ref { return m.Ite(f, False, True) }

// And returns f AND g.
func (m *Manager) And(f, g Ref) Ref { return m.Ite(f, g, False) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) Ref { return m.Ite(f, True, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) Ref { return m.Ite(f, m.Not(g), g) }

// Iff returns f <-> g.
func (m *Manager) Iff(f, g Ref) Ref { return m.Ite(f, g, m.Not(g)) }

// Implies returns f -> g.
func (m *Manager) Implies(f, g Ref) Ref { return m.Ite(f, g, True) }

// Diff returns f AND NOT g.
func (m *Manager) Diff(f, g Ref) Ref { return m.Ite(g, False, f) }

// String renders summary statistics.
func (m *Manager) String() string {
	return fmt.Sprintf("bdd: %d vars, %d nodes (%d GCs, %d freed)",
		m.nvars, m.NumNodes(), m.gcCount, m.gcFreed)
}
