package bdd

import (
	"time"

	"ttastartup/internal/obs"
)

// Protect registers f as an external root so that garbage collection keeps
// it (and its cone) alive. Calls nest: a node protected twice needs two
// Unprotects.
func (m *Manager) Protect(f Ref) Ref {
	m.roots[f]++
	return f
}

// Unprotect releases one protection of f.
func (m *Manager) Unprotect(f Ref) {
	if m.roots[f] == 0 {
		panic("bdd: Unprotect of unprotected node")
	}
	m.roots[f]--
	if m.roots[f] == 0 {
		delete(m.roots, f)
	}
}

// GC frees every node not reachable from the protected roots or the extra
// roots given, and clears the operation cache. It must only be called at
// points where no unprotected intermediate results are still needed. It
// returns the number of nodes freed.
func (m *Manager) GC(extra ...Ref) int {
	gcStart := time.Now()
	sp := m.obs.tracer.Start(obs.CatBDD, "gc")
	marked := make([]bool, len(m.nodes))
	marked[False] = true
	marked[True] = true
	var mark func(Ref)
	mark = func(f Ref) {
		if marked[f] {
			return
		}
		marked[f] = true
		n := &m.nodes[f]
		mark(n.low)
		mark(n.high)
	}
	for r := range m.roots {
		mark(r)
	}
	for _, r := range extra {
		mark(r)
	}

	// Clear the operation cache (entries may reference dead nodes).
	for i := range m.cache {
		m.cache[i] = cacheEntry{}
	}

	// Rebuild the freelist and the unique table.
	freed := 0
	m.free = m.free[:0]
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	for i := len(m.nodes) - 1; i >= 2; i-- {
		if !marked[i] {
			m.free = append(m.free, Ref(i))
			freed++
			continue
		}
		n := &m.nodes[i]
		h := hash3(n.level, int32(n.low), int32(n.high)) & uint64(len(m.buckets)-1)
		n.next = m.buckets[h]
		m.buckets[h] = int32(i)
	}
	m.gcCount++
	m.gcFreed += freed
	pause := time.Since(gcStart)
	m.gcPause += pause
	m.publishGC(sp, pause, freed)
	return freed
}

// ShouldGC reports whether the node pool has grown past the point where a
// collection at the caller's next safe point is worthwhile.
func (m *Manager) ShouldGC() bool {
	return m.NumNodes() > m.nodeLimit/2
}
