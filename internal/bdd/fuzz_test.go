package bdd

import (
	"testing"
)

// FuzzBDDOps interprets the fuzz input as a program over a register file
// of BDDs (≤12 variables, auto-reorder armed at a tiny threshold) and
// checks every result against a brute-force truth-table oracle, plus the
// manager's structural invariants after each GC or reorder. Variables are
// paired (2p, 2p+1) like the compiler's cur/next interleaving, so the
// order-preserving renaming is exercised under reordering too.
func FuzzBDDOps(f *testing.F) {
	f.Add([]byte{2, 0, 0, 1, 1, 2, 3, 2, 0, 1, 11})
	f.Add([]byte{4, 0, 0, 0, 0, 2, 1, 4, 1, 5, 4, 2, 0, 1, 7, 2, 0xff, 12, 6, 3, 0, 1, 2})
	f.Add([]byte{3, 0, 0, 2, 1, 1, 4, 3, 3, 0, 1, 9, 4, 0, 10, 11, 8, 5, 3, 4, 0x55})
	f.Add([]byte{1, 0, 0, 0, 1, 3, 2, 0, 1, 5, 0, 9, 1, 2, 11, 9, 2, 0, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		pairs := 1 + int(data[0])%6 // 2..12 variables, always paired
		nvars := 2 * pairs
		data = data[1:]
		words := (1<<nvars + 63) / 64

		m := New(nvars, Config{AutoReorder: true, ReorderStart: 64, CacheSize: 1 << 12})
		groups := make([][]int, pairs)
		permCN := make([]int, nvars)
		permNC := make([]int, nvars)
		for p := 0; p < pairs; p++ {
			c, n := 2*p, 2*p+1
			groups[p] = []int{c, n}
			permCN[c], permCN[n] = n, n
			permNC[c], permNC[n] = c, c
		}
		m.SetGroups(groups)
		curToNext := m.NewPermutation(permCN)

		full := func() []uint64 {
			tt := make([]uint64, words)
			for w := range tt {
				tt[w] = ^uint64(0)
			}
			if nvars < 6 {
				tt[0] = 1<<(1<<nvars) - 1
			}
			return tt
		}
		varTT := func(v int) []uint64 {
			tt := make([]uint64, words)
			for mask := 0; mask < 1<<nvars; mask++ {
				if mask&(1<<v) != 0 {
					tt[mask/64] |= 1 << (mask % 64)
				}
			}
			return tt
		}
		mask := func(tt []uint64) { // trim to 2^nvars bits
			if nvars < 6 {
				tt[0] &= 1<<(1<<nvars) - 1
			}
		}

		const nregs = 6
		regs := make([]Ref, nregs)
		oracle := make([][]uint64, nregs)
		for i := range regs {
			regs[i] = m.Protect(True)
			oracle[i] = full()
		}
		setReg := func(i int, r Ref, tt []uint64) {
			m.Unprotect(regs[i])
			regs[i] = m.Protect(r)
			mask(tt)
			oracle[i] = tt
		}
		verify := func(i int) {
			assign := make([]bool, nvars)
			for mk := 0; mk < 1<<nvars; mk++ {
				for v := 0; v < nvars; v++ {
					assign[v] = mk&(1<<v) != 0
				}
				want := oracle[i][mk/64]&(1<<(mk%64)) != 0
				if got := m.Eval(regs[i], assign); got != want {
					t.Fatalf("reg %d: mismatch at assignment %0*b: got %v, want %v",
						i, nvars, mk, got, want)
				}
			}
		}

		pc := 0
		next := func() byte {
			if pc >= len(data) {
				return 0
			}
			b := data[pc]
			pc++
			return b
		}

		steps := 0
		for pc < len(data) && steps < 48 {
			steps++
			op := next()
			dst := int(next()) % nregs
			switch op % 13 {
			case 0: // load Var
				v := int(next()) % nvars
				setReg(dst, m.Var(v), varTT(v))
			case 1: // load NVar
				v := int(next()) % nvars
				tt := varTT(v)
				for w := range tt {
					tt[w] = ^tt[w]
				}
				setReg(dst, m.NVar(v), tt)
			case 2: // And
				a, b := int(next())%nregs, int(next())%nregs
				tt := make([]uint64, words)
				for w := range tt {
					tt[w] = oracle[a][w] & oracle[b][w]
				}
				setReg(dst, m.And(regs[a], regs[b]), tt)
			case 3: // Or
				a, b := int(next())%nregs, int(next())%nregs
				tt := make([]uint64, words)
				for w := range tt {
					tt[w] = oracle[a][w] | oracle[b][w]
				}
				setReg(dst, m.Or(regs[a], regs[b]), tt)
			case 4: // Xor
				a, b := int(next())%nregs, int(next())%nregs
				tt := make([]uint64, words)
				for w := range tt {
					tt[w] = oracle[a][w] ^ oracle[b][w]
				}
				setReg(dst, m.Xor(regs[a], regs[b]), tt)
			case 5: // Not
				a := int(next()) % nregs
				tt := make([]uint64, words)
				for w := range tt {
					tt[w] = ^oracle[a][w]
				}
				setReg(dst, m.Not(regs[a]), tt)
			case 6: // Ite
				a, b, c := int(next())%nregs, int(next())%nregs, int(next())%nregs
				tt := make([]uint64, words)
				for w := range tt {
					tt[w] = oracle[a][w]&oracle[b][w] | ^oracle[a][w]&oracle[c][w]
				}
				setReg(dst, m.Ite(regs[a], regs[b], regs[c]), tt)
			case 7: // Exists over a variable subset
				a := int(next()) % nregs
				vmask := int(next()) | int(next())<<8
				var vars []int
				for v := 0; v < nvars; v++ {
					if vmask&(1<<v) != 0 {
						vars = append(vars, v)
					}
				}
				tt := append([]uint64(nil), oracle[a]...)
				for _, v := range vars {
					out := make([]uint64, words)
					for mk := 0; mk < 1<<nvars; mk++ {
						lo, hi := mk&^(1<<v), mk|1<<v
						bit := tt[lo/64]&(1<<(lo%64)) != 0 || tt[hi/64]&(1<<(hi%64)) != 0
						if bit {
							out[mk/64] |= 1 << (mk % 64)
						}
					}
					tt = out
				}
				setReg(dst, m.Exists(regs[a], m.Cube(vars)), tt)
			case 8: // AndExists
				a, b := int(next())%nregs, int(next())%nregs
				vmask := int(next())
				var vars []int
				for v := 0; v < nvars; v++ {
					if vmask&(1<<v) != 0 {
						vars = append(vars, v)
					}
				}
				tt := make([]uint64, words)
				for w := range tt {
					tt[w] = oracle[a][w] & oracle[b][w]
				}
				for _, v := range vars {
					out := make([]uint64, words)
					for mk := 0; mk < 1<<nvars; mk++ {
						lo, hi := mk&^(1<<v), mk|1<<v
						if tt[lo/64]&(1<<(lo%64)) != 0 || tt[hi/64]&(1<<(hi%64)) != 0 {
							out[mk/64] |= 1 << (mk % 64)
						}
					}
					tt = out
				}
				setReg(dst, m.AndExists(regs[a], regs[b], m.Cube(vars)), tt)
			case 9: // Permute cur->next, when the function is cur-only
				a := int(next()) % nregs
				curOnly := true
				for _, v := range m.Support(regs[a]) {
					if v%2 != 0 {
						curOnly = false
						break
					}
				}
				if !curOnly {
					continue
				}
				tt := make([]uint64, words)
				for mk := 0; mk < 1<<nvars; mk++ {
					// g(x) = f(x with each cur bit read from its next bit)
					src := 0
					for p := 0; p < pairs; p++ {
						if mk&(1<<(2*p+1)) != 0 {
							src |= 1 << (2 * p)
						}
					}
					if oracle[a][src/64]&(1<<(src%64)) != 0 {
						tt[mk/64] |= 1 << (mk % 64)
					}
				}
				setReg(dst, m.Permute(regs[a], curToNext), tt)
			case 10: // GC
				m.GC()
				checkInvariants(t, m)
				continue
			case 11: // manual reorder
				m.Reorder()
				checkInvariants(t, m)
				for p := 0; p < pairs; p++ {
					if m.VarLevel(2*p+1) != m.VarLevel(2*p)+1 {
						t.Fatalf("pair %d split by reorder", p)
					}
				}
				for i := range regs {
					verify(i)
				}
				continue
			case 12: // auto reorder at safe point
				if _, ran := m.ReorderIfPending(); ran {
					checkInvariants(t, m)
					for i := range regs {
						verify(i)
					}
				}
				continue
			}
			verify(dst)
		}
		// Final sweep: a reorder plus every register against its oracle.
		m.Reorder()
		checkInvariants(t, m)
		for i := range regs {
			verify(i)
		}
	})
}
