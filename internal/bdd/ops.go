package bdd

import (
	"math/big"
	"sort"
)

// Cube builds the conjunction of the given variables (all positive), the
// form quantification operations expect.
func (m *Manager) Cube(vars []int) Ref {
	levels := make([]int32, len(vars))
	for i, v := range vars {
		levels[i] = m.var2level[v]
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	r := True
	for i := len(levels) - 1; i >= 0; i-- {
		r = m.mkNode(levels[i], False, r)
	}
	return r
}

// Exists computes the existential quantification of f over the variables of
// cube (a positive conjunction built with Cube).
func (m *Manager) Exists(f, cube Ref) Ref {
	if f == False || f == True || cube == True {
		return f
	}
	// Skip cube variables above f.
	for cube != True && m.nodes[cube].level < m.nodes[f].level {
		cube = m.nodes[cube].high
	}
	if cube == True {
		return f
	}
	if r, ok := m.cacheLookup(opExists, f, cube, 0); ok {
		return r
	}
	n := &m.nodes[f]
	var r Ref
	if n.level == m.nodes[cube].level {
		r0 := m.Exists(n.low, m.nodes[cube].high)
		if r0 == True {
			r = True
		} else {
			r = m.Or(r0, m.Exists(n.high, m.nodes[cube].high))
		}
	} else {
		r = m.mkNode(n.level, m.Exists(n.low, cube), m.Exists(n.high, cube))
	}
	m.cacheStore(opExists, f, cube, 0, r)
	return r
}

// AndExists computes ∃cube. f ∧ g in one pass (the relational product at
// the heart of symbolic image computation).
func (m *Manager) AndExists(f, g, cube Ref) Ref {
	switch {
	case f == False || g == False:
		return False
	case f == True && g == True:
		return True
	case cube == True:
		return m.And(f, g)
	case f == True:
		return m.Exists(g, cube)
	case g == True:
		return m.Exists(f, cube)
	}
	nf, ng := &m.nodes[f], &m.nodes[g]
	top := nf.level
	if ng.level < top {
		top = ng.level
	}
	for cube != True && m.nodes[cube].level < top {
		cube = m.nodes[cube].high
	}
	if cube == True {
		return m.And(f, g)
	}
	if r, ok := m.cacheLookup(opAndExists, f, g, cube); ok {
		return r
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	var r Ref
	if m.nodes[cube].level == top {
		rest := m.nodes[cube].high
		r0 := m.AndExists(f0, g0, rest)
		if r0 == True {
			r = True
		} else {
			r = m.Or(r0, m.AndExists(f1, g1, rest))
		}
	} else {
		r = m.mkNode(top, m.AndExists(f0, g0, cube), m.AndExists(f1, g1, cube))
	}
	m.cacheStore(opAndExists, f, g, cube, r)
	return r
}

// Permutation is a registered variable renaming usable with Permute. The
// mapping must be strictly order-preserving on the support of every BDD it
// is applied to (adjacent cur/next interleaving satisfies this for
// cur-only or next-only functions).
type Permutation struct {
	id int32
	mp []int32
}

// NewPermutation registers a renaming: variable i maps to perm[i].
func (m *Manager) NewPermutation(perm []int) *Permutation {
	if len(perm) != int(m.nvars) {
		panic("bdd: permutation length must equal variable count")
	}
	mp := make([]int32, len(perm))
	for i, p := range perm {
		if p < 0 || p >= int(m.nvars) {
			panic("bdd: permutation target out of range")
		}
		mp[i] = int32(p)
	}
	m.permEpoch++
	return &Permutation{id: m.permEpoch, mp: mp}
}

// Permute renames the variables of f according to p.
func (m *Manager) Permute(f Ref, p *Permutation) Ref {
	r, lvl := m.permute(f, p)
	_ = lvl
	return r
}

// permute returns the renamed BDD and the minimum (top) new level in its
// cone; the level is used to verify order preservation as we rebuild.
func (m *Manager) permute(f Ref, p *Permutation) (Ref, int32) {
	if f == False || f == True {
		return f, m.nvars
	}
	if r, ok := m.cacheLookup(opPermute, f, Ref(p.id), 0); ok {
		return r, m.nodes[r].level
	}
	n := &m.nodes[f]
	newLevel := m.var2level[p.mp[m.level2var[n.level]]]
	r0, l0 := m.permute(n.low, p)
	r1, l1 := m.permute(n.high, p)
	if newLevel >= l0 || newLevel >= l1 {
		panic("bdd: permutation is not order-preserving on this function")
	}
	r := m.mkNode(newLevel, r0, r1)
	m.cacheStore(opPermute, f, Ref(p.id), 0, r)
	lvl := newLevel
	if r != False && r != True {
		lvl = m.nodes[r].level
	}
	return r, lvl
}

// SatCount returns the exact number of satisfying assignments of f over the
// given variable set. The support of f must be a subset of vars.
func (m *Manager) SatCount(f Ref, vars []int) *big.Int {
	sorted := make([]int32, len(vars))
	for i, v := range vars {
		sorted[i] = m.var2level[v]
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	index := make(map[int32]int, len(sorted))
	for i, v := range sorted {
		index[v] = i
	}
	memo := make(map[Ref]*big.Int)
	var count func(f Ref, i int) *big.Int
	count = func(f Ref, i int) *big.Int {
		// Returns the count over variables sorted[i:].
		if f == False {
			return big.NewInt(0)
		}
		if f == True {
			return pow2(len(sorted) - i)
		}
		j, ok := index[m.nodes[f].level]
		if !ok {
			panic("bdd: SatCount variable set does not cover support")
		}
		var sub *big.Int
		if c, ok := memo[f]; ok {
			sub = c
		} else {
			sub = new(big.Int).Add(count(m.nodes[f].low, j+1), count(m.nodes[f].high, j+1))
			memo[f] = sub
		}
		return new(big.Int).Mul(sub, pow2(j-i))
	}
	return count(f, 0)
}

func pow2(n int) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(n))
}

// PickCube returns one satisfying assignment of f as a slice indexed by
// variable: 0, 1, or -1 (don't care). Returns nil when f is unsatisfiable.
func (m *Manager) PickCube(f Ref) []int8 {
	if f == False {
		return nil
	}
	out := make([]int8, m.nvars)
	for i := range out {
		out[i] = -1
	}
	for f != True {
		n := &m.nodes[f]
		if n.low != False {
			out[m.level2var[n.level]] = 0
			f = n.low
		} else {
			out[m.level2var[n.level]] = 1
			f = n.high
		}
	}
	return out
}

// Eval evaluates f under a complete assignment indexed by variable.
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != False && f != True {
		n := &m.nodes[f]
		if assign[m.level2var[n.level]] {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}

// Support returns the sorted variable indices appearing in f.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	vars := make(map[int32]bool)
	var walk func(Ref)
	walk = func(f Ref) {
		if f == False || f == True || seen[f] {
			return
		}
		seen[f] = true
		n := &m.nodes[f]
		vars[n.level] = true
		walk(n.low)
		walk(n.high)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, int(m.level2var[v]))
	}
	sort.Ints(out)
	return out
}

// Size returns the number of nodes in the BDD rooted at f (excluding
// terminals).
func (m *Manager) Size(f Ref) int {
	seen := make(map[Ref]bool)
	var walk func(Ref) int
	walk = func(f Ref) int {
		if f == False || f == True || seen[f] {
			return 0
		}
		seen[f] = true
		n := &m.nodes[f]
		return 1 + walk(n.low) + walk(n.high)
	}
	return walk(f)
}
