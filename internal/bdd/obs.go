package bdd

import (
	"time"

	"ttastartup/internal/obs"
)

// obsSinks holds the manager's attached instrumentation: the metric
// handles are resolved once at SetObs so publishing is pointer-chasing
// only, and everything is nil (a no-op) until a scope is attached.
type obsSinks struct {
	tracer     *obs.Tracer
	gcs        *obs.Counter
	gcFreed    *obs.Counter
	gcPause    *obs.Histogram
	hits       *obs.Counter
	misses     *obs.Counter
	nodes      *obs.Gauge
	nodesPeak  *obs.Gauge
	uniqueSize *obs.Gauge

	reorders     *obs.Counter
	reorderSwaps *obs.Counter
	reorderGain  *obs.Counter
	reorderPause *obs.Histogram

	lastHits, lastMisses int // high-water marks for delta flushing
}

// SetObs attaches an instrumentation scope. The hot paths (cache probes,
// mkNode) still update plain fields; PublishObs flushes them, and GC
// publishes its pause and a "bdd/gc" span directly.
func (m *Manager) SetObs(scope obs.Scope) {
	m.obs = obsSinks{
		tracer:     scope.Trace,
		gcs:        scope.Reg.Counter(obs.MBDDGCs),
		gcFreed:    scope.Reg.Counter(obs.MBDDGCFreed),
		gcPause:    scope.Reg.Histogram(obs.MBDDGCPauseUS),
		hits:       scope.Reg.Counter(obs.MBDDCacheHits),
		misses:     scope.Reg.Counter(obs.MBDDCacheMisses),
		nodes:      scope.Reg.Gauge(obs.MBDDNodes),
		nodesPeak:  scope.Reg.Gauge(obs.MBDDNodesPeak),
		uniqueSize: scope.Reg.Gauge(obs.MBDDUniqueSize),

		reorders:     scope.Reg.Counter(obs.MBDDReorders),
		reorderSwaps: scope.Reg.Counter(obs.MBDDReorderSwaps),
		reorderGain:  scope.Reg.Counter(obs.MBDDReorderGain),
		reorderPause: scope.Reg.Histogram(obs.MBDDReorderPauseUS),
	}
}

// PublishObs flushes the manager's counters to the attached registry:
// cache hit/miss deltas since the previous flush, plus the live-node and
// unique-table gauges. Safe (and a near no-op) with no scope attached.
// The symbolic engine calls this once per fixpoint iteration.
func (m *Manager) PublishObs() {
	m.obs.hits.Add(int64(m.cacheHits - m.obs.lastHits))
	m.obs.misses.Add(int64(m.cacheMisses - m.obs.lastMisses))
	m.obs.lastHits, m.obs.lastMisses = m.cacheHits, m.cacheMisses
	n := int64(m.NumNodes())
	m.obs.nodes.Set(n)
	m.obs.nodesPeak.SetMax(n)
	m.obs.uniqueSize.Set(int64(len(m.buckets)))
}

// publishGC records one collection: counters, the pause histogram, and a
// span on the attached tracer.
func (m *Manager) publishGC(sp *obs.Span, pause time.Duration, freed int) {
	m.obs.gcs.Inc()
	m.obs.gcFreed.Add(int64(freed))
	m.obs.gcPause.Observe(pause.Microseconds())
	sp.Attr("freed", freed).Attr("live", m.NumNodes()).End()
}

// publishReorder records one sifting pass: counters, the pause histogram,
// and a span on the attached tracer.
func (m *Manager) publishReorder(sp *obs.Span, st ReorderStats) {
	m.obs.reorders.Inc()
	m.obs.reorderSwaps.Add(int64(st.Swaps))
	m.obs.reorderGain.Add(int64(st.NodesBefore - st.NodesAfter))
	m.obs.reorderPause.Observe(st.Duration.Microseconds())
	sp.Attr("before", st.NodesBefore).Attr("after", st.NodesAfter).Attr("swaps", st.Swaps).End()
}

// Stats is a point-in-time snapshot of the manager's internal counters.
type Stats struct {
	Nodes        int           // live nodes, terminals included
	UniqueSize   int           // unique-table bucket count
	CacheHits    int           // op-cache hits since creation
	CacheMisses  int           // op-cache misses since creation
	GCs          int           // collections run
	GCFreed      int           // nodes reclaimed across all collections
	GCPause      time.Duration // total stop-the-world time across all collections
	Reorders     int           // sifting passes run
	ReorderSwaps int           // adjacent-level swaps across all passes
	ReorderGain  int           // live nodes shed by reordering (summed)
	ReorderPause time.Duration // total wall time spent sifting
}

// SnapshotStats returns the current counter values.
func (m *Manager) SnapshotStats() Stats {
	return Stats{
		Nodes:        m.NumNodes(),
		UniqueSize:   len(m.buckets),
		CacheHits:    m.cacheHits,
		CacheMisses:  m.cacheMisses,
		GCs:          m.gcCount,
		GCFreed:      m.gcFreed,
		GCPause:      m.gcPause,
		Reorders:     m.reorders,
		ReorderSwaps: m.reorderSwaps,
		ReorderGain:  m.reorderGain,
		ReorderPause: m.reorderPause,
	}
}
