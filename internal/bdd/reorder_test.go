package bdd

import (
	"math/rand"
	"testing"
)

// checkInvariants verifies the structural health of the whole manager:
// children strictly below parents, no duplicate triples (canonicity), no
// collapsed nodes, every live node findable through the unique table, and
// var2level/level2var mutually inverse.
func checkInvariants(t *testing.T, m *Manager) {
	t.Helper()
	for i := 0; i < int(m.nvars); i++ {
		if m.level2var[m.var2level[i]] != int32(i) {
			t.Fatalf("var2level/level2var not inverse at var %d", i)
		}
	}
	isFree := make(map[Ref]bool, len(m.free))
	for _, f := range m.free {
		isFree[f] = true
	}
	seen := make(map[[3]int32]Ref)
	for i := 2; i < len(m.nodes); i++ {
		if isFree[Ref(i)] {
			continue
		}
		n := &m.nodes[i]
		if n.level < 0 {
			t.Fatalf("node %d: reorder sentinel survived outside a reorder", i)
		}
		if n.low == n.high {
			t.Fatalf("node %d: collapsed node in pool", i)
		}
		for _, c := range []Ref{n.low, n.high} {
			if c > 1 && m.nodes[c].level <= n.level {
				t.Fatalf("node %d (level %d): child %d at level %d not strictly below",
					i, n.level, c, m.nodes[c].level)
			}
		}
		key := [3]int32{n.level, int32(n.low), int32(n.high)}
		if prev, dup := seen[key]; dup {
			t.Fatalf("duplicate nodes %d and %d for triple %v", prev, i, key)
		}
		seen[key] = Ref(i)
		// The node must be reachable through its bucket chain.
		h := hash3(n.level, int32(n.low), int32(n.high)) & uint64(len(m.buckets)-1)
		found := false
		for j := m.buckets[h]; j >= 0; j = m.nodes[j].next {
			if j == int32(i) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("node %d missing from its unique-table bucket", i)
		}
	}
}

// truthTable snapshots f over nvars variables as a bitset.
func truthTable(m *Manager, f Ref, nvars int) []uint64 {
	tt := make([]uint64, (1<<nvars+63)/64)
	assign := make([]bool, nvars)
	for mask := 0; mask < 1<<nvars; mask++ {
		for i := 0; i < nvars; i++ {
			assign[i] = mask&(1<<i) != 0
		}
		if m.Eval(f, assign) {
			tt[mask/64] |= 1 << (mask % 64)
		}
	}
	return tt
}

// randomFuncs builds k random functions over nvars variables and protects
// them.
func randomFuncs(m *Manager, rng *rand.Rand, nvars, k int) []Ref {
	out := make([]Ref, 0, k)
	for len(out) < k {
		f := True
		for j := 0; j < 6; j++ {
			v := rng.Intn(nvars)
			lit := m.Var(v)
			if rng.Intn(2) == 0 {
				lit = m.NVar(v)
			}
			switch rng.Intn(3) {
			case 0:
				f = m.And(f, lit)
			case 1:
				f = m.Or(f, lit)
			default:
				f = m.Xor(f, lit)
			}
		}
		out = append(out, m.Protect(f))
	}
	return out
}

func TestReorderPreservesFunctions(t *testing.T) {
	const nvars = 10
	rng := rand.New(rand.NewSource(7))
	m := New(nvars, Config{})
	funcs := randomFuncs(m, rng, nvars, 20)
	want := make([][]uint64, len(funcs))
	for i, f := range funcs {
		want[i] = truthTable(m, f, nvars)
	}
	before := m.NumNodes()
	st := m.Reorder()
	checkInvariants(t, m)
	if st.NodesAfter > st.NodesBefore {
		t.Errorf("reorder grew the pool: %d -> %d", st.NodesBefore, st.NodesAfter)
	}
	if m.NumNodes() > before {
		t.Errorf("live nodes grew across reorder: %d -> %d", before, m.NumNodes())
	}
	for i, f := range funcs {
		got := truthTable(m, f, nvars)
		for w := range got {
			if got[w] != want[i][w] {
				t.Fatalf("function %d changed across reorder", i)
			}
		}
	}
	// Ops must still work on the reordered manager.
	g := m.And(funcs[0], m.Not(funcs[1]))
	_ = truthTable(m, g, nvars)
	checkInvariants(t, m)
}

func TestReorderRepeatedlyWithGC(t *testing.T) {
	const nvars = 12
	rng := rand.New(rand.NewSource(99))
	m := New(nvars, Config{})
	funcs := randomFuncs(m, rng, nvars, 12)
	want := make([][]uint64, len(funcs))
	for i, f := range funcs {
		want[i] = truthTable(m, f, nvars)
	}
	for round := 0; round < 5; round++ {
		m.Reorder()
		checkInvariants(t, m)
		m.GC()
		checkInvariants(t, m)
		// Mutate the protected set a little between rounds.
		f := m.Protect(m.Xor(funcs[round%len(funcs)], funcs[(round+1)%len(funcs)]))
		m.Unprotect(f)
		for i, f := range funcs {
			got := truthTable(m, f, nvars)
			for w := range got {
				if got[w] != want[i][w] {
					t.Fatalf("round %d: function %d changed", round, i)
				}
			}
		}
	}
}

func TestSetGroupsKeepsPairsAdjacent(t *testing.T) {
	const nvars = 12
	rng := rand.New(rand.NewSource(3))
	m := New(nvars, Config{})
	var groups [][]int
	for v := 0; v < nvars; v += 2 {
		groups = append(groups, []int{v, v + 1})
	}
	m.SetGroups(groups)
	randomFuncs(m, rng, nvars, 16)
	m.Reorder()
	checkInvariants(t, m)
	for v := 0; v < nvars; v += 2 {
		if m.VarLevel(v+1) != m.VarLevel(v)+1 {
			t.Fatalf("pair (%d,%d) split: levels %d and %d", v, v+1, m.VarLevel(v), m.VarLevel(v+1))
		}
	}
}

// TestReorderKeepsPermutationsValid is the pair-grouping invariant end to
// end: an interleaved cur/next renaming registered before any reorder must
// stay order-preserving (and correct) after sifting moves the pairs.
func TestReorderKeepsPermutationsValid(t *testing.T) {
	const pairs = 5
	const nvars = 2 * pairs
	m := New(nvars, Config{})
	var groups [][]int
	permCN := make([]int, nvars)
	permNC := make([]int, nvars)
	for p := 0; p < pairs; p++ {
		c, n := 2*p, 2*p+1
		groups = append(groups, []int{c, n})
		permCN[c], permCN[n] = n, n
		permNC[c], permNC[n] = c, c
	}
	m.SetGroups(groups)
	curToNext := m.NewPermutation(permCN)
	nextToCur := m.NewPermutation(permNC)

	rng := rand.New(rand.NewSource(11))
	// Functions over cur variables only.
	var curFuncs []Ref
	for i := 0; i < 10; i++ {
		f := True
		for j := 0; j < 5; j++ {
			v := 2 * rng.Intn(pairs)
			lit := m.Var(v)
			if rng.Intn(2) == 0 {
				lit = m.NVar(v)
			}
			if rng.Intn(2) == 0 {
				f = m.And(f, lit)
			} else {
				f = m.Or(f, lit)
			}
		}
		curFuncs = append(curFuncs, m.Protect(f))
	}
	want := make([][]uint64, len(curFuncs))
	for i, f := range curFuncs {
		want[i] = truthTable(m, m.Permute(f, curToNext), nvars)
	}
	m.Reorder()
	checkInvariants(t, m)
	for i, f := range curFuncs {
		g := m.Permute(f, curToNext) // must not panic: pairs stayed interleaved
		got := truthTable(m, g, nvars)
		for w := range got {
			if got[w] != want[i][w] {
				t.Fatalf("permuted function %d changed across reorder", i)
			}
		}
		if back := m.Permute(g, nextToCur); back != f {
			t.Fatalf("round-trip rename of function %d lost identity", i)
		}
	}
}

func TestAutoReorderTrigger(t *testing.T) {
	const nvars = 14
	m := New(nvars, Config{AutoReorder: true, ReorderStart: 64})
	if m.ReorderPending() {
		t.Fatal("fresh manager should not have a pending reorder")
	}
	// Build something big enough to cross the threshold: a parity-ish mix.
	f := False
	for v := 0; v < nvars; v++ {
		f = m.Xor(f, m.Var(v))
	}
	g := True
	for v := 0; v < nvars-1; v++ {
		g = m.And(g, m.Or(m.Var(v), m.Var(v+1)))
	}
	if !m.ReorderPending() {
		t.Fatalf("threshold %d not armed at %d nodes", 64, m.NumNodes())
	}
	m.Protect(f)
	m.Protect(g)
	st, ran := m.ReorderIfPending()
	if !ran {
		t.Fatal("ReorderIfPending did not run")
	}
	if m.ReorderPending() {
		t.Fatal("pending flag survived the reorder")
	}
	if st.Swaps == 0 {
		t.Error("sifting performed no swaps on a 14-variable pool")
	}
	checkInvariants(t, m)
	if _, ran := m.ReorderIfPending(); ran {
		t.Fatal("second ReorderIfPending ran without pending flag")
	}
	stats := m.SnapshotStats()
	if stats.Reorders != 1 || stats.ReorderSwaps != st.Swaps {
		t.Errorf("stats = %+v, want 1 reorder with %d swaps", stats, st.Swaps)
	}
}

// TestReorderShrinksSeparatedPairs is the classic win: for f = (a0∧b0) ∨
// (a1∧b1) ∨ ... with all a's ordered before all b's, the BDD is
// exponential; interleaving the pairs makes it linear. Sifting must find
// (something close to) the small order.
func TestReorderShrinksSeparatedPairs(t *testing.T) {
	const pairs = 7
	const nvars = 2 * pairs
	m := New(nvars, Config{})
	// Variables 0..pairs-1 are the a's, pairs..2*pairs-1 the b's.
	f := False
	for p := 0; p < pairs; p++ {
		f = m.Or(f, m.And(m.Var(p), m.Var(pairs+p)))
	}
	m.Protect(f)
	before := m.Size(f)
	st := m.Reorder()
	checkInvariants(t, m)
	after := m.Size(f)
	if after >= before {
		t.Fatalf("sifting did not shrink the separated-pairs function: %d -> %d (stats %+v)",
			before, after, st)
	}
	// The optimal interleaved order gives 3n-1 nodes (plus terminals
	// excluded by Size); allow slack but require the exponential cliff gone.
	if after > 6*pairs {
		t.Errorf("size after sifting = %d, want near-linear (≤ %d)", after, 6*pairs)
	}
	tt := truthTable(m, f, nvars)
	m2 := New(nvars, Config{})
	f2 := False
	for p := 0; p < pairs; p++ {
		f2 = m2.Or(f2, m2.And(m2.Var(p), m2.Var(pairs+p)))
	}
	tt2 := truthTable(m2, f2, nvars)
	for w := range tt {
		if tt[w] != tt2[w] {
			t.Fatal("function changed across reorder")
		}
	}
}

func TestVarOrderAccessors(t *testing.T) {
	m := New(6, Config{})
	for v := 0; v < 6; v++ {
		if m.VarLevel(v) != v || m.VarAt(v) != v {
			t.Fatalf("fresh manager order not identity at %d", v)
		}
	}
	ord := m.VarOrder()
	if len(ord) != 6 {
		t.Fatalf("VarOrder length %d", len(ord))
	}
	randomFuncs(m, rand.New(rand.NewSource(1)), 6, 8)
	m.Reorder()
	ord = m.VarOrder()
	seen := make([]bool, 6)
	for l, v := range ord {
		if m.VarLevel(v) != l || m.VarAt(l) != v {
			t.Fatalf("accessors inconsistent at level %d", l)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("variable %d missing from order", v)
		}
	}
}

// TestReorderPoolRealloc pins the swap primitive against Go slice-growth
// aliasing: reorderMk appends to m.nodes, and an append that reallocates
// the backing array invalidates any held *node pointer mid-rewrite. The
// test clamps the pool's capacity to its length so the very first
// reorderMk append relocates the array, then checks every function and
// every structural invariant survived.
func TestReorderPoolRealloc(t *testing.T) {
	const nvars = 12
	rng := rand.New(rand.NewSource(42))
	m := New(nvars, Config{})
	funcs := randomFuncs(m, rng, nvars, 24)
	want := make([][]uint64, len(funcs))
	for i, f := range funcs {
		want[i] = truthTable(m, f, nvars)
	}
	// Force the next append to move the backing array.
	m.nodes = m.nodes[:len(m.nodes):len(m.nodes)]
	m.Reorder()
	checkInvariants(t, m)
	for i, f := range funcs {
		got := truthTable(m, f, nvars)
		for w := range got {
			if got[w] != want[i][w] {
				t.Fatalf("function %d changed across reallocating reorder", i)
			}
		}
	}
}
