package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testSpec is a small but representative sweep: both topologies, big-bang
// on and off, two degrees, two lemmas.
func testSpec() Spec {
	return Spec{
		Ns:         []int{3},
		Topologies: []string{TopologyHub, TopologyBus},
		BigBang:    []bool{true, false},
		Degrees:    []int{1, 2},
		Lemmas:     []string{"safety", "liveness"},
		DeltaInit:  4,
	}
}

func testJobs(t *testing.T) []Job {
	t.Helper()
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestSpecJobsDeterministic(t *testing.T) {
	a := testJobs(t)
	b := testJobs(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two expansions of the same spec differ")
	}
	seen := make(map[string]bool)
	for _, j := range a {
		id := j.ID()
		if seen[id] {
			t.Fatalf("duplicate job %s", id)
		}
		seen[id] = true
	}
	// hub: 2 bigbang × 2 degrees × 2 lemmas = 8; bus: 2 degrees × 2 lemmas = 4.
	if len(a) != 12 {
		t.Fatalf("want 12 jobs, got %d", len(a))
	}
}

func TestSpecJobsSafety2Collapses(t *testing.T) {
	jobs, err := Spec{Ns: []int{3}, Lemmas: []string{"safety_2"}, Degrees: []int{1, 2, 3}}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("faulty-hub lemma should collapse the degree sweep to 1 job, got %d", len(jobs))
	}
	if jobs[0].FaultyHub != 0 || jobs[0].FaultyNode != -1 {
		t.Fatalf("safety_2 job should target the hub: %+v", jobs[0])
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Topologies: []string{"ring"}},
		{Ns: []int{2}},
		{Degrees: []int{7}},
		{Lemmas: []string{"nope"}},
		{Engines: []string{"magic"}},
	}
	for _, s := range bad {
		if _, err := s.Jobs(); err == nil {
			t.Errorf("spec %+v should be rejected", s)
		}
	}
}

// TestParallelMatchesSerial: the canonical report of a parallel run is
// byte-identical to a serial run of the same job list.
func TestParallelMatchesSerial(t *testing.T) {
	jobs := testJobs(t)
	serial, err := RunJobs(context.Background(), jobs, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunJobs(context.Background(), jobs, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Complete() || !parallel.Complete() {
		t.Fatal("incomplete report from an uncancelled run")
	}
	if s, p := serial.Canonical(), parallel.Canonical(); s != p {
		t.Fatalf("parallel run diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}

// countingProgress cancels the campaign after n finished jobs, mimicking
// an operator interrupt at a deterministic point.
type countingProgress struct {
	NopProgress
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *countingProgress) JobFinished(worker int, rec Record) {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}

// TestCancelMidFlight: cancelling a running campaign returns ctx.Err(),
// keeps the already-finished records, and leaks no goroutines.
func TestCancelMidFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	jobs := testJobs(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := &countingProgress{n: 3, cancel: cancel}
	rep, err := RunJobs(ctx, jobs, RunOptions{Workers: 2, Progress: prog, Heartbeat: time.Millisecond})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(rep.Records) < 3 {
		t.Fatalf("finished records lost on cancel: %d", len(rep.Records))
	}
	if rep.Complete() {
		t.Fatal("cancelled campaign claims completion")
	}
	// All workers and the heartbeat goroutine must have exited; allow the
	// runtime a moment to reap them.
	for i := 0; ; i++ {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestResumeByteIdentical: interrupt a campaign mid-flight, resume it from
// the store, and require the final canonical report to be byte-identical
// to an uninterrupted serial run.
func TestResumeByteIdentical(t *testing.T) {
	jobs := testJobs(t)

	fresh, err := RunJobs(context.Background(), jobs, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	prog := &countingProgress{n: 4, cancel: cancel}
	_, err = RunJobs(ctx, jobs, RunOptions{Workers: 2, Store: store, Progress: prog})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	store.Close()

	resumed, err := OpenStore(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Len() < 4 {
		t.Fatalf("store lost records across the interrupt: %d", resumed.Len())
	}
	rep, err := RunJobs(context.Background(), jobs, RunOptions{Workers: 2, Store: resumed})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == 0 {
		t.Fatal("resume run recomputed everything (no records skipped)")
	}
	if !rep.Complete() {
		t.Fatal("resumed campaign incomplete")
	}
	if f, r := fresh.Canonical(), rep.Canonical(); f != r {
		t.Fatalf("resumed report differs from fresh run:\n--- fresh ---\n%s--- resumed ---\n%s", f, r)
	}
}

// TestStoreTornTail: a crash mid-append leaves a torn trailing line; the
// store must keep the intact prefix and drop the tail.
func TestStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	store, err := OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Job: Job{Topology: TopologyHub, N: 3, FaultyNode: 1, FaultyHub: -1, Degree: 1, Lemma: "safety", Engine: "symbolic"}, Verdict: "holds", Holds: true, WallMS: 5}
	if err := store.Append(rec); err != nil {
		t.Fatal(err)
	}
	store.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"job":{"topology":"hub","n":3,` /* torn mid-record */)
	f.Close()

	reopened, err := OpenStore(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != 1 {
		t.Fatalf("want 1 intact record, got %d", reopened.Len())
	}
	if _, ok := reopened.Get(rec.Job.ID()); !ok {
		t.Fatal("intact record lost")
	}
	// Appending after recovery must yield a parseable file.
	rec2 := rec
	rec2.Job.Degree = 2
	if err := reopened.Append(rec2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, line := range splitLines(data) {
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("corrupt line after recovery: %v", err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("want 2 lines after recovery+append, got %d", lines)
	}
}

func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				out = append(out, data[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// TestTimeoutRecordsInconclusive: a job whose budget cannot fit the check
// is recorded as inconclusive, and with FallbackBMC the bounded engine
// produces a bounded verdict tagged with the fallback engine.
func TestTimeoutRecordsInconclusive(t *testing.T) {
	jobs := []Job{{
		Topology: TopologyHub, N: 4, BigBang: true,
		FaultyNode: 2, FaultyHub: -1, Degree: 6,
		Lemma: "safety", Engine: "symbolic",
	}}
	rep, err := RunJobs(context.Background(), jobs, RunOptions{Workers: 1, Timeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := rep.Record(jobs[0])
	if !ok {
		t.Fatal("timed-out job not recorded")
	}
	if !rec.Inconclusive || rec.Verdict != "inconclusive (deadline)" {
		t.Fatalf("want inconclusive record, got %+v", rec)
	}
	if c := rep.Counts(); c.Inconclusive != 1 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestTimeoutFallbackBMC(t *testing.T) {
	// The BMC fallback gets a fresh budget; give it room at a shallow depth
	// so the rescue deterministically succeeds where symbolic cannot start.
	jobs := []Job{{
		Topology: TopologyHub, N: 3, BigBang: true,
		FaultyNode: 1, FaultyHub: -1, Degree: 6, DeltaInit: 4,
		Lemma: "safety", Engine: "symbolic",
	}}
	opts := RunOptions{Workers: 1, Timeout: time.Nanosecond, FallbackBMC: true}
	opts.Options.BMCDepth = 2
	// A nanosecond kills the fallback too; rerun with a budget only the
	// bounded engine can meet is timing-dependent, so instead check the
	// plumbing: nanosecond budget + fallback that also times out must stay
	// inconclusive and record no fallback engine.
	rep, err := RunJobs(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := rep.Record(jobs[0])
	if !rec.Inconclusive {
		t.Fatalf("want inconclusive under 1ns budget, got %+v", rec)
	}
	if rec.FallbackEngine != "" {
		t.Fatalf("fallback cannot have succeeded under 1ns: %+v", rec)
	}

	// Now run the fallback path for real: symbolic budget too small, but
	// runJob's fallback is exercised directly with a workable budget.
	frec, err := runJob(context.Background(), jobs[0], RunOptions{
		Timeout: 30 * time.Second, FallbackBMC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if frec.Verdict == "error" {
		t.Fatalf("direct job errored: %s", frec.Error)
	}
}

// TestFallbackRescue forces the deadline-exceeded path deterministically
// by stubbing nothing: a 4-node symbolic liveness check cannot finish in
// 20ms, while a depth-2 BMC pass finishes comfortably within its fresh
// budget of the same 20ms... on slow machines it may not; so assert only
// the two legal outcomes (bounded verdict via fallback, or inconclusive).
func TestFallbackRescue(t *testing.T) {
	jobs := []Job{{
		Topology: TopologyHub, N: 4, BigBang: true,
		FaultyNode: 2, FaultyHub: -1, Degree: 6,
		Lemma: "safety", Engine: "symbolic",
	}}
	opts := RunOptions{Workers: 1, Timeout: 300 * time.Millisecond, FallbackBMC: true}
	opts.Options.BMCDepth = 1
	rep, err := RunJobs(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := rep.Record(jobs[0])
	switch {
	case rec.FallbackEngine == "bmc":
		if rec.Verdict != "holds (bounded)" {
			t.Fatalf("fallback verdict: %+v", rec)
		}
	case rec.Inconclusive:
		// Legal on a very slow machine: both budgets expired.
	case rec.Holds && rec.Stats.Engine == "symbolic":
		// Legal on a very fast machine: symbolic finished inside 300ms.
	default:
		t.Fatalf("unexpected record: %+v", rec)
	}
}

// TestForEach covers the pool helper: full coverage, bounded concurrency,
// first-error propagation, and cancellation.
func TestForEach(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int]bool)
	var active, peak int32
	err := ForEach(context.Background(), 3, 50, func(ctx context.Context, i int) error {
		cur := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		atomic.AddInt32(&active, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 50 {
		t.Fatalf("covered %d of 50 indexes", len(seen))
	}
	if peak > 3 {
		t.Fatalf("concurrency bound violated: peak %d workers", peak)
	}

	boom := errors.New("boom")
	var calls int32
	err = ForEach(context.Background(), 2, 100, func(ctx context.Context, i int) error {
		atomic.AddInt32(&calls, 1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if calls >= 100 {
		t.Fatal("error did not stop the sweep")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = ForEach(ctx, 2, 10, func(ctx context.Context, i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRecordJSONRoundTrip: records survive the store encoding unchanged.
func TestRecordJSONRoundTrip(t *testing.T) {
	rec := Record{
		Job:       Job{Topology: TopologyBus, N: 4, FaultyNode: 2, FaultyHub: -1, Degree: 3, DeltaInit: 3, Lemma: "liveness", Engine: "symbolic"},
		Verdict:   "VIOLATED",
		CexLen:    16,
		CexDigest: "3cf19f361ba17d35",
		WallMS:    121,
		Stats:     RecordStats{Engine: "symbolic", BDDVars: 120, Reachable: "41322", Iterations: 9},
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("round trip changed the record:\n%+v\n%+v", rec, back)
	}
}

// TestResumeTornLastLine: a kill -9 mid-append leaves the checkpoint
// ending in a truncated record. Resume must drop the partial record,
// re-run exactly that job, and complete the campaign with a report
// byte-identical to an uninterrupted run — not fail, and not trust the
// torn bytes.
func TestResumeTornLastLine(t *testing.T) {
	jobs := testJobs(t)

	fresh, err := RunJobs(context.Background(), jobs, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunJobs(context.Background(), jobs, RunOptions{Workers: 2, Store: store}); err != nil {
		t.Fatal(err)
	}
	store.Close()

	// Tear the final record in half, as a crash mid-write would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(data)
	if len(lines) != len(jobs) {
		t.Fatalf("store has %d lines for %d jobs", len(lines), len(jobs))
	}
	last := lines[len(lines)-1]
	var lost Record
	if err := json.Unmarshal(last, &lost); err != nil {
		t.Fatal(err)
	}
	torn := len(data) - len(last)/2 - 1 // keep a strict prefix of the last line
	if err := os.Truncate(path, int64(torn)); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenStore(path, true)
	if err != nil {
		t.Fatalf("resume after torn tail failed the campaign: %v", err)
	}
	defer reopened.Close()
	if reopened.Len() != len(jobs)-1 {
		t.Fatalf("want %d intact records after tearing one, got %d", len(jobs)-1, reopened.Len())
	}
	if _, ok := reopened.Get(lost.Job.ID()); ok {
		t.Fatal("torn record must not be trusted")
	}

	rep, err := RunJobs(context.Background(), jobs, RunOptions{Workers: 2, Store: reopened})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != len(jobs)-1 {
		t.Fatalf("resume should re-run exactly the torn job: skipped %d of %d", rep.Skipped, len(jobs))
	}
	if !rep.Complete() {
		t.Fatal("resumed campaign incomplete")
	}
	if f, r := fresh.Canonical(), rep.Canonical(); f != r {
		t.Fatalf("resumed report differs from fresh run:\n--- fresh ---\n%s--- resumed ---\n%s", f, r)
	}
}

// TestRecordModelDigest: every verdict record carries the canonical model
// content address, it matches the digest computed without running the
// check, and semantically different configurations get different
// addresses.
func TestRecordModelDigest(t *testing.T) {
	jobs, err := Spec{
		Ns: []int{3}, Topologies: []string{TopologyHub, TopologyBus},
		Degrees: []int{1, 2}, Lemmas: []string{"safety"}, DeltaInit: 4,
	}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunJobs(context.Background(), jobs, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]string) // digest -> job ID (same-model jobs may share)
	for _, j := range jobs {
		rec, ok := rep.Record(j)
		if !ok {
			t.Fatalf("missing record for %s", j.ID())
		}
		if rec.ModelDigest == "" || len(rec.ModelDigest) != 16 {
			t.Fatalf("record %s has no model digest: %+v", j.ID(), rec)
		}
		full, err := JobModelDigest(j)
		if err != nil {
			t.Fatal(err)
		}
		if full[:16] != rec.ModelDigest {
			t.Fatalf("record digest %s disagrees with JobModelDigest %s for %s", rec.ModelDigest, full[:16], j.ID())
		}
		seen[rec.ModelDigest] = j.ID()
	}
	// Degree 1 vs 2 and hub vs bus are different transition systems: the
	// four jobs must span four distinct model digests.
	if len(seen) != 4 {
		t.Fatalf("want 4 distinct model digests across the sweep, got %d: %v", len(seen), seen)
	}
}

// TestTransitionSkippedExecuted: campaign expanders before the
// liveness-to-safety transform silently dropped (induction|ic3)×liveness
// jobs. The same spec now expands to a superset, the new jobs execute and
// carry the explicit "skipped->executed" transition marker, and resuming
// a checkpoint written by the old expander replays its records
// byte-identically — the store grows strictly by appending the
// transitioned jobs.
func TestTransitionSkippedExecuted(t *testing.T) {
	spec := Spec{
		Ns:         []int{3},
		Topologies: []string{TopologyBus},
		Degrees:    []int{3},
		Lemmas:     []string{"safety", "liveness"},
		Engines:    []string{"symbolic", "induction", "ic3"},
		DeltaInit:  2,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var oldJobs, newJobs []Job
	for _, j := range jobs {
		if Transitioned(j) {
			newJobs = append(newJobs, j)
		} else {
			oldJobs = append(oldJobs, j)
		}
	}
	if len(newJobs) != 2 {
		t.Fatalf("want induction+ic3 liveness in the expansion, got %d transitioned jobs", len(newJobs))
	}

	// Write an old-era checkpoint: the expansion without the SAT liveness
	// jobs, fully executed.
	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunJobs(context.Background(), oldJobs, RunOptions{Workers: 1, Store: store}); err != nil {
		t.Fatal(err)
	}
	store.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Resume the old checkpoint against the new, larger expansion.
	reopened, err := OpenStore(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	rep, err := RunJobs(context.Background(), jobs, RunOptions{Workers: 1, Store: reopened})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != len(oldJobs) {
		t.Fatalf("resume replayed %d records, want every old-era record (%d)", rep.Skipped, len(oldJobs))
	}
	if !rep.Complete() {
		t.Fatal("resumed campaign incomplete")
	}

	// Old records replay byte-identically: the store grew strictly by
	// appending.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) || string(after[:len(before)]) != string(before) {
		t.Fatal("resume rewrote old-era records instead of appending the transitioned jobs")
	}

	// The transitioned jobs executed, carry the marker, and agree with the
	// symbolic liveness verdict; untransitioned records carry no marker.
	var symLive *Record
	for _, j := range oldJobs {
		rec, ok := rep.Record(j)
		if !ok {
			t.Fatalf("old job %s missing", j.ID())
		}
		if rec.Transition != "" {
			t.Errorf("untransitioned job %s carries marker %q", j.ID(), rec.Transition)
		}
		if j.Engine == "symbolic" && j.Lemma == "liveness" {
			r := rec
			symLive = &r
		}
	}
	if symLive == nil {
		t.Fatal("no symbolic liveness job in the expansion")
	}
	for _, j := range newJobs {
		rec, ok := rep.Record(j)
		if !ok {
			t.Fatalf("transitioned job %s missing", j.ID())
		}
		if rec.Error != "" {
			t.Fatalf("transitioned job %s errored: %s", j.ID(), rec.Error)
		}
		if rec.Transition != TransitionSkippedExecuted {
			t.Errorf("job %s transition %q, want %q", j.ID(), rec.Transition, TransitionSkippedExecuted)
		}
		if rec.Holds != symLive.Holds {
			t.Errorf("job %s holds=%v disagrees with symbolic liveness holds=%v", j.ID(), rec.Holds, symLive.Holds)
		}
		if !rec.Holds && rec.CexLen == 0 {
			t.Errorf("job %s refuted liveness without a lasso", j.ID())
		}
	}
}
