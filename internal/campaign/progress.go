package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Snapshot is a point-in-time view of a running campaign, delivered to
// Progress.Heartbeat and Progress.Done.
type Snapshot struct {
	// Total is the number of jobs in the campaign; Done counts recorded
	// jobs including Skipped ones replayed from the store.
	Total   int `json:"total"`
	Done    int `json:"done"`
	Skipped int `json:"skipped,omitempty"`
	// Running lists the job IDs currently occupying workers.
	Running []string `json:"running,omitempty"`
	// Elapsed is the campaign wall time so far; ETA extrapolates the
	// remaining time from the mean job duration (0 until one job ran).
	Elapsed time.Duration `json:"-"`
	ETA     time.Duration `json:"-"`
}

// Progress receives campaign lifecycle events. The runner serialises all
// calls under its own lock, so implementations need no synchronisation.
type Progress interface {
	// JobStarted fires when a worker picks up a job.
	JobStarted(worker int, job Job)
	// JobFinished fires when a worker records a job's outcome.
	JobFinished(worker int, rec Record)
	// JobSkipped fires for jobs replayed from the resume store.
	JobSkipped(job Job)
	// Heartbeat fires every RunOptions.Heartbeat while the pool is busy.
	Heartbeat(s Snapshot)
	// Done fires once after the pool drains (even on cancellation).
	Done(s Snapshot)
}

// NopProgress discards all events.
type NopProgress struct{}

func (NopProgress) JobStarted(int, Job)     {}
func (NopProgress) JobFinished(int, Record) {}
func (NopProgress) JobSkipped(Job)          {}
func (NopProgress) Heartbeat(Snapshot)      {}
func (NopProgress) Done(Snapshot)           {}

// TextProgress renders events as human-readable lines.
type TextProgress struct {
	W io.Writer
	// Quiet suppresses the per-job lines, keeping heartbeats and the
	// final summary.
	Quiet bool
}

func (p *TextProgress) JobStarted(worker int, job Job) {}

func (p *TextProgress) JobFinished(worker int, rec Record) {
	if p.Quiet {
		return
	}
	extra := ""
	if rec.FallbackEngine != "" {
		extra = fmt.Sprintf(" [fallback=%s]", rec.FallbackEngine)
	}
	if rec.CexLen > 0 {
		extra += fmt.Sprintf(" cex=%d", rec.CexLen)
	}
	fmt.Fprintf(p.W, "[w%d] %-60s %s%s (%v)\n", worker, rec.Job.ID(), rec.Verdict, extra, rec.Wall().Round(time.Millisecond))
}

func (p *TextProgress) JobSkipped(job Job) {
	if p.Quiet {
		return
	}
	fmt.Fprintf(p.W, "skip %-60s (already recorded)\n", job.ID())
}

func (p *TextProgress) Heartbeat(s Snapshot) {
	eta := "?"
	if s.ETA > 0 {
		eta = s.ETA.Round(time.Second).String()
	}
	fmt.Fprintf(p.W, "progress %d/%d done (%d resumed) elapsed %v eta %s workers %d\n",
		s.Done, s.Total, s.Skipped, s.Elapsed.Round(time.Second), eta, len(s.Running))
}

func (p *TextProgress) Done(s Snapshot) {
	fmt.Fprintf(p.W, "campaign: %d/%d jobs recorded (%d resumed) in %v\n",
		s.Done, s.Total, s.Skipped, s.Elapsed.Round(time.Millisecond))
}

// JSONProgress renders each event as one JSON object per line, suitable
// for machine consumption alongside the JSONL result store.
type JSONProgress struct {
	W io.Writer
}

func (p *JSONProgress) emit(event string, payload any) {
	obj := map[string]any{"event": event}
	switch v := payload.(type) {
	case Record:
		obj["record"] = v
	case Job:
		obj["job_id"] = v.ID()
	case Snapshot:
		obj["progress"] = v
		obj["elapsed_ms"] = v.Elapsed.Milliseconds()
		obj["eta_ms"] = v.ETA.Milliseconds()
	}
	line, err := json.Marshal(obj)
	if err != nil {
		return
	}
	p.W.Write(append(line, '\n'))
}

func (p *JSONProgress) JobStarted(worker int, job Job) {}
func (p *JSONProgress) JobFinished(worker int, rec Record) {
	p.emit("job_finished", rec)
}
func (p *JSONProgress) JobSkipped(job Job)   { p.emit("job_skipped", job) }
func (p *JSONProgress) Heartbeat(s Snapshot) { p.emit("heartbeat", s) }
func (p *JSONProgress) Done(s Snapshot)      { p.emit("done", s) }
