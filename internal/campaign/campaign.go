// Package campaign is a verification-campaign orchestrator: it turns a
// declarative sweep specification (cluster sizes, topologies, big-bang
// on/off, fault degrees, lemmas, engines) into a deterministic job list and
// executes it on a bounded pool of worker goroutines, each owning its own
// suite (BDD manager, SAT solver) so jobs share nothing. Campaigns support
// per-job deadlines with graceful cancellation via context.Context, a
// crash-safe JSONL result store that lets an interrupted campaign resume
// without re-running finished jobs, live progress reporting with text and
// JSON sinks, and a retry-with-bounded-engine fallback for jobs that
// exceed their deadline. It is the machinery behind cmd/ttacampaign and
// the parallel paths of cmd/ttabench and examples/quickstart.
//
// The paper's exhaustive fault simulation is exactly such a sweep: one
// model-checking job per (configuration, lemma) pair, all independent —
// the orchestration, not any single check, dominates a campaign's wall
// time once workers saturate the hardware.
package campaign

import (
	"fmt"
	"strings"
	"time"
)

// Topologies.
const (
	// TopologyHub is the paper's main model: a star of nodes around two
	// central guardians (internal/tta/startup).
	TopologyHub = "hub"
	// TopologyBus is the Section 3 baseline: the original broadcast-bus
	// startup algorithm (internal/tta/original).
	TopologyBus = "bus"
)

// Job is one verification task: check one lemma of one model configuration
// with one engine. Jobs are value types with a canonical identity (ID) so
// a restarted campaign recognises already-recorded work.
type Job struct {
	Topology   string `json:"topology"`
	N          int    `json:"n"`
	BigBang    bool   `json:"big_bang"`             // hub topology only
	FaultyNode int    `json:"faulty_node"`          // -1: none
	FaultyHub  int    `json:"faulty_hub"`           // -1: none (hub topology only)
	Degree     int    `json:"degree"`               // fault degree; 0 when no faulty node
	DeltaInit  int    `json:"delta_init,omitempty"` // power-on window (0: model default)
	Lemma      string `json:"lemma"`
	Engine     string `json:"engine"`
}

// ID returns the job's canonical identity, a stable human-readable string
// used as the primary key of the result store.
func (j Job) ID() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/n=%d", j.Topology, j.N)
	if j.Topology == TopologyHub {
		if j.BigBang {
			b.WriteString("/bb=on")
		} else {
			b.WriteString("/bb=off")
		}
	}
	switch {
	case j.FaultyNode >= 0:
		fmt.Fprintf(&b, "/fnode=%d/deg=%d", j.FaultyNode, j.Degree)
	case j.FaultyHub >= 0:
		fmt.Fprintf(&b, "/fhub=%d", j.FaultyHub)
	default:
		b.WriteString("/fault-free")
	}
	if j.DeltaInit > 0 {
		fmt.Fprintf(&b, "/di=%d", j.DeltaInit)
	}
	fmt.Fprintf(&b, "/%s/%s", j.Lemma, j.Engine)
	return b.String()
}

// Spec declares a campaign as a cross product of configuration dimensions.
// Zero-valued fields take the defaults documented per field; Jobs expands
// the spec into a deterministic, duplicate-free job list.
type Spec struct {
	// Ns lists the cluster sizes (default: 3).
	Ns []int `json:"ns,omitempty"`
	// Topologies lists the model families to sweep (default: hub).
	Topologies []string `json:"topologies,omitempty"`
	// BigBang lists the hub-topology big-bang variants (default: on only).
	// The bus topology has no big-bang mechanism and ignores this axis.
	BigBang []bool `json:"big_bang,omitempty"`
	// Degrees lists the fault degrees for faulty-node jobs (default 1..6;
	// the bus topology's fault model stops at degree 3 and higher degrees
	// are skipped for it).
	Degrees []int `json:"degrees,omitempty"`
	// Lemmas lists lemma names (default: safety, liveness, timeliness and
	// safety_2). Hub-topology jobs check safety_2 against a faulty hub and
	// every other lemma against a faulty node; the bus topology supports
	// safety and liveness and skips the rest.
	Lemmas []string `json:"lemmas,omitempty"`
	// Engines lists engine names (default: symbolic). Every engine now
	// covers every lemma: k-induction and IC3 prove eventuality lemmas
	// through the liveness-to-safety product (internal/gcl/l2s), so the
	// expansion no longer drops those pairs. Records for the previously
	// skipped pairs carry Transition "skipped->executed".
	Engines []string `json:"engines,omitempty"`
	// DeltaInit overrides the power-on window in slots (0: each model's
	// default — the paper's 8·round for the hub, 2·round for the bus).
	DeltaInit int `json:"delta_init,omitempty"`
}

// Paper lemma names understood by the expander. The sanity lemmas of
// core.SanityLemmas are accepted too; they are checked against a faulty
// node like the main node lemmas.
var hubFaultyHubLemmas = map[string]bool{"safety_2": true}

// busLemmas lists the lemmas the bus-topology baseline model defines.
var busLemmas = map[string]bool{"safety": true, "liveness": true}

// eventuality reports whether a lemma is an eventuality (F p) property.
// Campaign expanders before the liveness-to-safety transform dropped
// (induction|ic3) × eventuality pairs; Transitioned identifies them.
func eventuality(lemma string) bool { return lemma == "liveness" }

// TransitionSkippedExecuted is the Record.Transition marker for job
// classes that older campaign versions silently skipped and that now
// execute.
const TransitionSkippedExecuted = "skipped->executed"

// Transitioned reports whether a job belongs to a class that earlier
// campaign expanders silently skipped (SAT-engine eventuality lemmas).
func Transitioned(j Job) bool {
	return (j.Engine == "induction" || j.Engine == "ic3") && eventuality(j.Lemma)
}

// maxBusDegree is the bus topology's fault-model ceiling.
const maxBusDegree = 3

func (s Spec) ns() []int {
	if len(s.Ns) == 0 {
		return []int{3}
	}
	return s.Ns
}

func (s Spec) topologies() []string {
	if len(s.Topologies) == 0 {
		return []string{TopologyHub}
	}
	return s.Topologies
}

func (s Spec) bigBang() []bool {
	if len(s.BigBang) == 0 {
		return []bool{true}
	}
	return s.BigBang
}

func (s Spec) degrees() []int {
	if len(s.Degrees) == 0 {
		return []int{1, 2, 3, 4, 5, 6}
	}
	return s.Degrees
}

func (s Spec) lemmas() []string {
	if len(s.Lemmas) == 0 {
		return []string{"safety", "liveness", "timeliness", "safety_2"}
	}
	return s.Lemmas
}

func (s Spec) engines() []string {
	if len(s.Engines) == 0 {
		return []string{"symbolic"}
	}
	return s.Engines
}

// Jobs expands the spec into its deterministic job list: the same spec
// always yields the same jobs in the same order, which is what makes
// resume and report reproduction sound. Dimensions nest in declaration
// order (topology, n, big-bang, degree, lemma, engine); combinations that
// do not apply to a topology or engine are skipped, and combinations that
// collapse to the same configuration (e.g. faulty-hub lemmas, which have
// no fault degree) are emitted once.
func (s Spec) Jobs() ([]Job, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	var jobs []Job
	seen := make(map[string]bool)
	add := func(j Job) {
		if id := j.ID(); !seen[id] {
			seen[id] = true
			jobs = append(jobs, j)
		}
	}
	for _, topo := range s.topologies() {
		for _, n := range s.ns() {
			bigBangs := s.bigBang()
			if topo == TopologyBus {
				bigBangs = []bool{false} // no big-bang axis on the bus
			}
			for _, bb := range bigBangs {
				for _, deg := range s.degrees() {
					for _, lemma := range s.lemmas() {
						if topo == TopologyBus && !busLemmas[lemma] {
							continue
						}
						if topo == TopologyBus && deg > maxBusDegree {
							continue
						}
						for _, engine := range s.engines() {
							j := Job{
								Topology:   topo,
								N:          n,
								BigBang:    bb,
								FaultyNode: n / 2,
								FaultyHub:  -1,
								Degree:     deg,
								DeltaInit:  s.DeltaInit,
								Lemma:      lemma,
								Engine:     engine,
							}
							if topo == TopologyHub && hubFaultyHubLemmas[lemma] {
								// Faulty-hub lemmas have no degree axis;
								// the dedup set collapses the sweep.
								j.FaultyNode = -1
								j.FaultyHub = 0
								j.Degree = 0
							}
							add(j)
						}
					}
				}
			}
		}
	}
	return jobs, nil
}

func (s Spec) validate() error {
	for _, topo := range s.topologies() {
		if topo != TopologyHub && topo != TopologyBus {
			return fmt.Errorf("campaign: unknown topology %q (want %s or %s)", topo, TopologyHub, TopologyBus)
		}
	}
	for _, n := range s.ns() {
		if n < 3 {
			return fmt.Errorf("campaign: cluster size %d too small (need n >= 3)", n)
		}
	}
	for _, d := range s.degrees() {
		if d < 1 || d > 6 {
			return fmt.Errorf("campaign: fault degree %d out of range 1..6", d)
		}
	}
	known := map[string]bool{
		"safety": true, "liveness": true, "timeliness": true, "safety_2": true,
		"no-error": true, "locks-only-faulty": true, "hubs-agree": true, "node-hub-agree": true,
	}
	for _, l := range s.lemmas() {
		if !known[l] {
			return fmt.Errorf("campaign: unknown lemma %q", l)
		}
	}
	for _, e := range s.engines() {
		switch e {
		case "symbolic", "explicit", "bmc", "induction", "ic3":
		default:
			return fmt.Errorf("campaign: unknown engine %q", e)
		}
	}
	return nil
}

// Record is the durable outcome of one finished job: exactly one JSONL
// line of the result store. Wall time and engine statistics vary run to
// run; verdict, counterexample digest and identity do not, which is why
// Report.Canonical excludes the former.
type Record struct {
	Job Job `json:"job"`
	// Verdict is the engine verdict string ("holds", "VIOLATED", "holds
	// (bounded)"), "inconclusive (deadline)" for jobs whose budget ran
	// out, or "error".
	Verdict string `json:"verdict"`
	// Holds mirrors mc.Result.Holds (false for inconclusive and error).
	Holds bool `json:"holds"`
	// Inconclusive marks deadline-exceeded jobs (no verdict either way).
	Inconclusive bool `json:"inconclusive,omitempty"`
	// FallbackEngine names the engine that produced the verdict when the
	// primary engine exceeded its deadline and the bounded fallback ran.
	FallbackEngine string `json:"fallback_engine,omitempty"`
	// CexLen and CexDigest summarise the counterexample trace: its length
	// and a short content hash over the state sequence (engines are
	// deterministic, so the digest is reproducible run to run).
	CexLen    int    `json:"cex_len,omitempty"`
	CexDigest string `json:"cex_digest,omitempty"`
	// ModelDigest is the canonical content address of the checked model
	// (gcl.System.ShortDigest of the finalized source system, independent
	// of -opt rewriting) — the model half of the verdict-cache key and the
	// durable replacement for ad-hoc configuration identity strings.
	ModelDigest string `json:"model_digest,omitempty"`
	// Transition documents a job-class status change across campaign
	// versions: "skipped->executed" marks SAT-engine liveness jobs that
	// earlier expanders silently dropped (the invariant-only era) and
	// that now execute through the liveness-to-safety product. Old
	// checkpoints never contain such jobs, so resuming one replays its
	// records byte-identically and only appends the transitioned jobs.
	Transition string `json:"transition,omitempty"`
	// WallMS is the job's wall-clock time in milliseconds.
	WallMS int64 `json:"wall_ms"`
	// Stats carries the engine measurements (schema below).
	Stats RecordStats `json:"stats"`
	// Error is set (with Verdict "error") when the job failed outright.
	Error string `json:"error,omitempty"`
}

// RecordStats is the machine-readable subset of mc.Stats.
type RecordStats struct {
	Engine     string `json:"engine,omitempty"`
	StateBits  int    `json:"state_bits,omitempty"`
	BDDVars    int    `json:"bdd_vars,omitempty"`
	Reachable  string `json:"reachable,omitempty"` // decimal big integer
	Visited    int    `json:"visited,omitempty"`
	Iterations int    `json:"iterations,omitempty"`
	PeakNodes  int    `json:"peak_nodes,omitempty"`
	Reorders   int    `json:"reorders,omitempty"`
	Conflicts  int    `json:"conflicts,omitempty"`
	// SAT-engine counters (bmc, induction, ic3).
	SATQueries   int     `json:"sat_queries,omitempty"`
	Decisions    int     `json:"decisions,omitempty"`
	Propagations int     `json:"propagations,omitempty"`
	Restarts     int     `json:"restarts,omitempty"`
	Obligations  int     `json:"obligations,omitempty"`
	CoreShrink   float64 `json:"core_shrink,omitempty"`
	// Static-optimizer reductions (present when the job ran with -opt).
	OptVarsDropped int `json:"opt_vars_dropped,omitempty"`
	OptCmdsDropped int `json:"opt_cmds_dropped,omitempty"`
	OptBitsSaved   int `json:"opt_bits_saved,omitempty"`
}

// Wall returns the recorded wall time as a duration.
func (r Record) Wall() time.Duration { return time.Duration(r.WallMS) * time.Millisecond }
