package campaign

import (
	"fmt"
	"strings"
	"time"
)

// Report aggregates a campaign's records, keyed by job ID, keeping the
// deterministic job order of the spec expansion for all rendered output.
type Report struct {
	// Jobs is the full deterministic job list, in expansion order.
	Jobs []Job
	// Records maps job ID to outcome (absent: job did not run, e.g. the
	// campaign was cancelled first).
	Records map[string]Record
	// Skipped counts records replayed from a resume store rather than
	// computed this run.
	Skipped int
}

// NewReport prepares an empty report for a job list.
func NewReport(jobs []Job) *Report {
	return &Report{Jobs: jobs, Records: make(map[string]Record, len(jobs))}
}

func (r *Report) add(rec Record) { r.Records[rec.Job.ID()] = rec }

// Record returns the outcome of one job, if recorded.
func (r *Report) Record(j Job) (Record, bool) {
	rec, ok := r.Records[j.ID()]
	return rec, ok
}

// Complete reports whether every job has a record.
func (r *Report) Complete() bool { return len(r.Records) == len(r.Jobs) }

// Counts tallies the verdict classes.
type Counts struct {
	Holds, Violated, Inconclusive, Errors, Missing int
}

// Counts walks the records and tallies verdicts.
func (r *Report) Counts() Counts {
	var c Counts
	for _, j := range r.Jobs {
		rec, ok := r.Records[j.ID()]
		switch {
		case !ok:
			c.Missing++
		case rec.Error != "":
			c.Errors++
		case rec.Inconclusive:
			c.Inconclusive++
		case rec.Holds:
			c.Holds++
		default:
			c.Violated++
		}
	}
	return c
}

// Canonical renders the timing-free canonical form of the report: one line
// per job in expansion order with the verdict and counterexample digest.
// Two campaigns over the same job list — serial or parallel, fresh or
// interrupted-and-resumed — produce byte-identical canonical reports,
// which is the property the resume machinery is tested against.
func (r *Report) Canonical() string {
	var b strings.Builder
	for _, j := range r.Jobs {
		id := j.ID()
		rec, ok := r.Records[id]
		switch {
		case !ok:
			fmt.Fprintf(&b, "%s\t(not run)\n", id)
		case rec.CexDigest != "":
			fmt.Fprintf(&b, "%s\t%s\tcex=%s\n", id, rec.Verdict, rec.CexDigest)
		default:
			fmt.Fprintf(&b, "%s\t%s\n", id, rec.Verdict)
		}
	}
	return b.String()
}

// Summary renders a one-line tally.
func (r *Report) Summary() string {
	c := r.Counts()
	parts := []string{fmt.Sprintf("%d jobs", len(r.Jobs))}
	add := func(n int, label string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, label))
		}
	}
	add(c.Holds, "hold")
	add(c.Violated, "violated")
	add(c.Inconclusive, "inconclusive")
	add(c.Errors, "errors")
	add(c.Missing, "not run")
	return strings.Join(parts, ", ")
}

// Format renders the full human-readable report: a verdict table in job
// order followed by the tally.
func (r *Report) Format() string {
	var b strings.Builder
	for _, j := range r.Jobs {
		id := j.ID()
		rec, ok := r.Records[id]
		if !ok {
			fmt.Fprintf(&b, "%-64s (not run)\n", id)
			continue
		}
		extra := ""
		if rec.FallbackEngine != "" {
			extra = fmt.Sprintf(" [fallback=%s]", rec.FallbackEngine)
		}
		if rec.CexLen > 0 {
			extra += fmt.Sprintf(" cex_len=%d digest=%s", rec.CexLen, rec.CexDigest)
		}
		if rec.Error != "" {
			extra += " " + rec.Error
		}
		fmt.Fprintf(&b, "%-64s %-16s %8v%s\n", id, rec.Verdict, rec.Wall().Round(time.Millisecond), extra)
	}
	b.WriteString(r.Summary())
	b.WriteString("\n")
	return b.String()
}
