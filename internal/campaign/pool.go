package campaign

import (
	"context"
	"runtime"
	"sync"
)

// ForEach runs fn(ctx, i) for i in [0, n) on a bounded pool of worker
// goroutines (workers <= 0: GOMAXPROCS). It is the campaign runner's pool
// pattern extracted for reuse by other fan-out consumers (cmd/ttalint
// -all, cmd/ttabench parallel experiments): indexes are handed out in
// order, cancellation stops the feed and interrupts in-flight calls via
// ctx, and all workers are joined before return. The first non-nil error
// from fn (or ctx.Err() on cancellation) is returned; remaining indexes
// are skipped once an error is seen.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return ctx.Err()
	}

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if failed() || ctx.Err() != nil {
					continue // drain without working
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
