package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"ttastartup/internal/core"
	"ttastartup/internal/gcl"
	"ttastartup/internal/gcl/opt"
	"ttastartup/internal/mc"
	"ttastartup/internal/mc/bmc"
	"ttastartup/internal/mc/explicit"
	"ttastartup/internal/mc/ic3"
	"ttastartup/internal/mc/symbolic"
	"ttastartup/internal/obs"
	"ttastartup/internal/tta"
	"ttastartup/internal/tta/original"
	"ttastartup/internal/tta/startup"
)

// RunOptions tunes campaign execution.
type RunOptions struct {
	// Workers bounds the worker pool (default: GOMAXPROCS). Each worker
	// builds a private suite per job — BDD managers and SAT solvers are
	// never shared across goroutines.
	Workers int
	// Timeout is the per-job budget (0: none). A job that exceeds it is
	// recorded as "inconclusive (deadline)" — unless FallbackBMC rescues
	// it — and the campaign moves on.
	Timeout time.Duration
	// FallbackBMC retries deadline-exceeded non-BMC jobs with the bounded
	// engine under a fresh budget; a bounded verdict ("holds (bounded)" or
	// a refutation) replaces the inconclusive record, tagged with
	// FallbackEngine.
	FallbackBMC bool
	// Options tunes the engines of every job (each job still constructs
	// its own engine instances from this shared value).
	Options core.Options
	// Store, when non-nil, receives one fsynced JSONL record per finished
	// job, and jobs it already holds are skipped (resume).
	Store *Store
	// Progress receives job lifecycle events and heartbeats (nil: none).
	// The runner serialises all sink calls; sinks need no locking.
	Progress Progress
	// Heartbeat is the interval between Progress.Heartbeat calls
	// (0: no heartbeat goroutine).
	Heartbeat time.Duration
}

func (o RunOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run expands spec and executes the jobs; see RunJobs.
func Run(ctx context.Context, spec Spec, opts RunOptions) (*Report, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	return RunJobs(ctx, jobs, opts)
}

// RunJobs executes a job list on a bounded worker pool. Jobs already
// present in opts.Store are skipped; every other job runs exactly once and
// its record is appended to the store before the next job is handed out to
// that worker. Cancellation of ctx stops feeding the pool, interrupts the
// engines' hot loops, waits for all workers to exit, and returns ctx's
// error together with the partial report — finished jobs keep their
// records, so a later resume run completes only the remainder.
func RunJobs(ctx context.Context, jobs []Job, opts RunOptions) (*Report, error) {
	rep := NewReport(jobs)
	progress := opts.Progress
	if progress == nil {
		progress = NopProgress{}
	}
	start := time.Now()

	var pending []Job
	var mu sync.Mutex // guards rep, store appends, progress sinks, workerJob
	for _, j := range jobs {
		if opts.Store != nil {
			if rec, ok := opts.Store.Get(j.ID()); ok {
				rep.add(rec)
				rep.Skipped++
				progress.JobSkipped(j)
				continue
			}
		}
		pending = append(pending, j)
	}

	nw := opts.workers()
	if nw > len(pending) && len(pending) > 0 {
		nw = len(pending)
	}
	workerJob := make([]string, nw) // current job ID per worker ("" idle)

	scope := opts.Options.Obs
	scope.Reg.Gauge(obs.MCampaignWorkers).Set(int64(nw))
	cJobs := scope.Reg.Counter(obs.MCampaignJobs)
	cBusy := scope.Reg.Counter(obs.MCampaignBusyMS)

	snapshot := func() Snapshot {
		s := Snapshot{
			Total:   len(jobs),
			Done:    len(rep.Records),
			Skipped: rep.Skipped,
			Elapsed: time.Since(start),
		}
		for _, id := range workerJob {
			if id != "" {
				s.Running = append(s.Running, id)
			}
		}
		ran := s.Done - s.Skipped
		if left := s.Total - s.Done; ran > 0 && left > 0 {
			s.ETA = time.Duration(int64(s.Elapsed) / int64(ran) * int64(left))
		}
		return s
	}

	var storeErr error
	jobCh := make(chan Job)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for job := range jobCh {
				mu.Lock()
				workerJob[w] = job.ID()
				progress.JobStarted(w, job)
				mu.Unlock()

				// One span per job, on the worker's own trace lane (tid
				// w+1) so the Chrome viewer shows pool utilisation.
				sp := scope.Trace.StartOn(w+1, obs.CatCampaign, job.ID())
				rec, err := runJob(ctx, job, opts)
				if err == nil {
					sp.Attr("verdict", rec.Verdict)
					cJobs.Inc()
					cBusy.Add(rec.WallMS)
				}
				sp.End()

				mu.Lock()
				workerJob[w] = ""
				if err == nil {
					rep.add(rec)
					progress.JobFinished(w, rec)
					if opts.Store != nil && storeErr == nil {
						storeErr = opts.Store.Append(rec)
					}
				}
				mu.Unlock()
				// err != nil only on campaign cancellation: the job is
				// deliberately not recorded (it has no verdict) and the
				// feeder below is already draining.
			}
		}(w)
	}

	// Heartbeat reporter, stopped after the pool drains.
	hbDone := make(chan struct{})
	if opts.Heartbeat > 0 {
		go func() {
			t := time.NewTicker(opts.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-hbDone:
					return
				case <-t.C:
					mu.Lock()
					s := snapshot()
					progress.Heartbeat(s)
					mu.Unlock()
				}
			}
		}()
	}

	// Feed the pool from this goroutine; cancellation stops the feed.
feed:
	for _, job := range pending {
		select {
		case jobCh <- job:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobCh)
	wg.Wait()
	close(hbDone)

	mu.Lock()
	final := snapshot()
	progress.Done(final)
	mu.Unlock()

	if storeErr != nil {
		return rep, fmt.Errorf("campaign: result store: %w", storeErr)
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// ExecuteJob checks one job outside any pool: the job-level entry point
// used by the verification service's worker processes (internal/serve),
// which own their scheduling and durability and only need the check
// itself — deadline classification, bounded-engine rescue, and error
// capture included. It is runJob exported: a verdict record, an
// "inconclusive (deadline)" record, or an error record; a non-nil error
// is returned only when ctx itself is cancelled (the job has no verdict
// and stays pending).
func ExecuteJob(ctx context.Context, job Job, opts RunOptions) (Record, error) {
	return runJob(ctx, job, opts)
}

// runJob checks one job, classifying the outcome: a verdict record, an
// "inconclusive (deadline)" record (with optional bounded-engine rescue),
// an error record, or — only when the campaign context itself is done — a
// non-nil error and no record.
func runJob(ctx context.Context, job Job, opts RunOptions) (Record, error) {
	start := time.Now()
	jctx := ctx
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	res, sys, err := checkJob(jctx, job, job.Engine, opts)
	rec := Record{Job: job}
	if Transitioned(job) {
		rec.Transition = TransitionSkippedExecuted
	}
	switch {
	case err == nil:
		fillResult(&rec, res, sys)
	case ctx.Err() != nil:
		// The campaign itself was cancelled (or its deadline passed):
		// no record, the job stays pending for a resume run.
		return Record{}, ctx.Err()
	case errors.Is(err, context.DeadlineExceeded):
		rec.Verdict = "inconclusive (deadline)"
		rec.Inconclusive = true
		if opts.FallbackBMC && job.Engine != "bmc" {
			fctx := ctx
			var cancel context.CancelFunc
			if opts.Timeout > 0 {
				fctx, cancel = context.WithTimeout(ctx, opts.Timeout)
			}
			fres, fsys, ferr := checkJob(fctx, job, "bmc", opts)
			if cancel != nil {
				cancel()
			}
			if ferr == nil {
				fillResult(&rec, fres, fsys)
				rec.Inconclusive = false
				rec.FallbackEngine = "bmc"
			} else if ctx.Err() != nil {
				return Record{}, ctx.Err()
			}
			// A fallback that errors or times out too leaves the
			// inconclusive record in place.
		}
	default:
		rec.Verdict = "error"
		rec.Error = err.Error()
	}
	rec.WallMS = time.Since(start).Milliseconds()
	if rec.WallMS == 0 {
		rec.WallMS = 1 // sub-millisecond jobs still count as work done
	}
	return rec, nil
}

func fillResult(rec *Record, res *mc.Result, sys *gcl.System) {
	rec.Verdict = res.Verdict.String()
	rec.Holds = res.Holds()
	rec.ModelDigest = sys.ShortDigest()
	if res.Trace != nil {
		rec.CexLen = res.Trace.Len()
		rec.CexDigest = traceDigest(sys, res.Trace)
	}
	st := res.Stats
	rec.Stats = RecordStats{
		Engine:       st.Engine,
		StateBits:    st.StateBits,
		BDDVars:      st.BDDVars,
		Visited:      st.Visited,
		Iterations:   st.Iterations,
		PeakNodes:    st.PeakNodes,
		Reorders:     st.Reorders,
		Conflicts:    st.Conflicts,
		SATQueries:   st.SATQueries,
		Decisions:    st.Decisions,
		Propagations: st.Propagations,
		Restarts:     st.Restarts,
		Obligations:  st.Obligations,
		CoreShrink:   st.CoreShrink,

		OptVarsDropped: st.OptVarsDropped,
		OptCmdsDropped: st.OptCmdsDropped,
		OptBitsSaved:   st.OptBitsSaved,
	}
	if st.Reachable != nil {
		rec.Stats.Reachable = st.Reachable.String()
	}
}

// traceDigest hashes the counterexample's state sequence (plus the lasso
// loop-back index) into a short reproducible fingerprint: the engines are
// deterministic, so identical configurations yield identical digests.
func traceDigest(sys *gcl.System, t *mc.Trace) string {
	h := sha256.New()
	vars := sys.StateVars()
	for _, st := range t.States {
		io.WriteString(h, gcl.Key(st, vars))
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "loop=%d", t.LoopsTo)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// checkJob runs one check with the named engine, constructing a private
// suite/model so concurrent jobs share nothing.
func checkJob(ctx context.Context, job Job, engine string, opts RunOptions) (*mc.Result, *gcl.System, error) {
	switch job.Topology {
	case TopologyHub:
		return checkHub(ctx, job, engine, opts)
	case TopologyBus:
		return checkBus(ctx, job, engine, opts)
	default:
		return nil, nil, fmt.Errorf("campaign: unknown topology %q", job.Topology)
	}
}

// HubConfig maps a hub-topology job onto its model configuration.
func HubConfig(job Job) startup.Config {
	cfg := startup.DefaultConfig(job.N)
	cfg.DeltaInit = job.DeltaInit
	cfg.DisableBigBang = !job.BigBang
	switch {
	case job.FaultyNode >= 0:
		cfg = cfg.WithFaultyNode(job.FaultyNode)
		cfg.FaultDegree = job.Degree
	case job.FaultyHub >= 0:
		cfg = cfg.WithFaultyHub(job.FaultyHub)
	}
	return cfg
}

// BusConfig maps a bus-topology job onto its model configuration.
func BusConfig(job Job) original.Config {
	cfg := original.Config{
		N:           job.N,
		FaultyNode:  job.FaultyNode,
		FaultDegree: job.Degree,
		DeltaInit:   job.DeltaInit,
	}
	if cfg.FaultyNode < 0 {
		cfg.FaultDegree = maxBusDegree // degree is irrelevant but must validate
	}
	return cfg
}

// JobModelDigest builds the job's model — without checking anything — and
// returns the canonical content address of its finalized system
// (gcl.System.Digest). The verification service computes it at submission
// time to probe the verdict cache before scheduling a single job.
func JobModelDigest(job Job) (string, error) {
	switch job.Topology {
	case TopologyHub:
		model, err := startup.Build(HubConfig(job))
		if err != nil {
			return "", err
		}
		return model.Sys.Digest(), nil
	case TopologyBus:
		m, err := original.Build(BusConfig(job))
		if err != nil {
			return "", err
		}
		return m.Sys.Digest(), nil
	default:
		return "", fmt.Errorf("campaign: unknown topology %q", job.Topology)
	}
}

func checkHub(ctx context.Context, job Job, engine string, opts RunOptions) (*mc.Result, *gcl.System, error) {
	cfg := HubConfig(job)
	lemmas, err := core.ParseLemmas(job.Lemma)
	if err != nil || len(lemmas) != 1 {
		return nil, nil, fmt.Errorf("campaign: bad lemma %q", job.Lemma)
	}
	eng, err := core.ParseEngine(engine)
	if err != nil {
		return nil, nil, err
	}
	suite, err := core.NewSuite(cfg, opts.Options)
	if err != nil {
		return nil, nil, err
	}
	res, err := suite.CheckCtx(ctx, lemmas[0], eng)
	if err != nil {
		return nil, nil, err
	}
	return res, suite.Model.Sys, nil
}

func checkBus(ctx context.Context, job Job, engine string, opts RunOptions) (*mc.Result, *gcl.System, error) {
	o := opts.Options
	o.Normalize()
	m, err := original.Build(BusConfig(job))
	if err != nil {
		return nil, nil, err
	}
	var prop mc.Property
	switch job.Lemma {
	case "safety":
		prop = m.Safety()
	case "liveness":
		prop = m.Liveness()
	default:
		return nil, nil, fmt.Errorf("campaign: bus topology has no lemma %q", job.Lemma)
	}
	depth := o.BMCDepth
	if depth == 0 {
		depth = 2 * (tta.Params{N: job.N}).WorstCaseStartup()
	}

	// With -opt the engines run on the per-property optimized system; the
	// trace (and its digest) are computed on the inflated full-model states
	// by FinishOpt below, so records stay comparable across opt settings.
	sys := m.Sys
	var oo *opt.Optimized
	if o.Opt {
		var oprop mc.Property
		oo, oprop, err = core.OptimizeProp(m.Sys, prop)
		if err != nil {
			return nil, nil, err
		}
		sys = oo.Sys
		prop = oprop
	}

	var res *mc.Result
	switch engine {
	case "symbolic":
		eng, err := symbolic.New(sys.Compile(), o.Symbolic)
		if err != nil {
			return nil, nil, err
		}
		if prop.Kind == mc.Eventually {
			res, err = eng.CheckEventuallyCtx(ctx, prop)
		} else {
			res, err = eng.CheckInvariantCtx(ctx, prop)
		}
		if err != nil {
			return nil, nil, err
		}
	case "explicit":
		if prop.Kind == mc.Eventually {
			res, err = explicit.CheckEventuallyCtx(ctx, sys, prop, o.Explicit)
		} else {
			res, err = explicit.CheckInvariantCtx(ctx, sys, prop, o.Explicit)
		}
		if err != nil {
			return nil, nil, err
		}
	case "bmc":
		if prop.Kind == mc.Eventually {
			res, err = bmc.CheckEventuallyRefuteCtx(ctx, sys.Compile(), prop, bmc.Options{MaxDepth: depth, Obs: o.Obs})
		} else {
			res, err = bmc.CheckInvariantCtx(ctx, sys.Compile(), prop, bmc.Options{MaxDepth: depth, Obs: o.Obs})
		}
		if err != nil {
			return nil, nil, err
		}
	case "induction":
		if prop.Kind == mc.Eventually {
			// Liveness via the l2s product; SimplePath makes the
			// induction complete on the finite product.
			res, err = bmc.CheckEventuallyInductionCtx(ctx, sys, prop, bmc.InductionOptions{MaxK: depth, SimplePath: true, Obs: o.Obs})
		} else {
			res, err = bmc.CheckInvariantInductionCtx(ctx, sys.Compile(), prop, bmc.InductionOptions{MaxK: depth, Obs: o.Obs})
		}
		if err != nil {
			return nil, nil, err
		}
	case "ic3":
		if prop.Kind == mc.Eventually {
			res, err = ic3.CheckEventuallyCtx(ctx, sys, prop, o.IC3)
		} else {
			res, err = ic3.CheckInvariantCtx(ctx, sys.Compile(), prop, o.IC3)
		}
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("campaign: unknown engine %q", engine)
	}
	if oo != nil {
		if err := core.FinishOpt(res, oo, o.Obs); err != nil {
			return nil, nil, err
		}
	}
	return res, m.Sys, nil
}
