package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Store is the campaign's durable result log: one JSON record per line,
// each line fsynced before the runner hands the worker its next job. The
// job ID is the primary key. Opening an existing store in resume mode
// loads every intact record and tolerates a torn trailing line (the
// fingerprint of a crash mid-write), truncating it away so appends start
// on a clean boundary.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string
	done map[string]Record
}

// OpenStore opens (or creates) the JSONL store at path. With resume true
// existing records are loaded and kept; otherwise the file is truncated.
func OpenStore(path string, resume bool) (*Store, error) {
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, path: path, done: make(map[string]Record)}
	if resume {
		if err := s.load(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// load reads the intact prefix of the file into the done map and truncates
// any torn trailing line left by a crash.
func (s *Store) load() error {
	if _, err := s.f.Seek(0, 0); err != nil {
		return err
	}
	r := bufio.NewReader(s.f)
	var valid int64
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// No trailing newline (or read error): whatever remains is a
			// torn write — drop it.
			break
		}
		var rec Record
		if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.Job.Topology == "" {
			// Corrupt line mid-file: everything after the last good
			// record is untrustworthy.
			break
		}
		s.done[rec.Job.ID()] = rec
		valid += int64(len(line))
	}
	if err := s.f.Truncate(valid); err != nil {
		return fmt.Errorf("campaign: truncating torn store tail: %w", err)
	}
	if _, err := s.f.Seek(valid, 0); err != nil {
		return err
	}
	return nil
}

// Get returns the stored record for a job ID, if any.
func (s *Store) Get(id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.done[id]
	return rec, ok
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done)
}

// Append writes one record as a JSONL line and fsyncs it — after Append
// returns, the record survives a crash or kill of the campaign process.
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := s.f.Write(line); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.done[rec.Job.ID()] = rec
	return nil
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Close closes the underlying file.
func (s *Store) Close() error { return s.f.Close() }
