#!/bin/sh
# served-smoke: end-to-end crash-recovery drill for ttaserved.
#
#   1. Start a daemon, submit a 10-job verification campaign.
#   2. kill -9 the daemon once at least two units are journaled.
#   3. Restart the daemon on the same data directory; it must resume the
#      campaign and finish it.
#   4. Run the same campaign on a fresh daemon with a fresh data
#      directory; the two canonical reports must be byte-identical.
#   5. Resubmit the same spec to the resumed daemon; the new job must
#      complete with every unit answered by the verdict cache and zero
#      units executed, and the status must report the execution cost the
#      cache saved.
#   6. Check the resumed job's observability surfaces: per-unit stats on
#      /units for every unit (including recovered ones), a valid
#      Prometheus exposition on /metricsz, and a merged multi-process
#      Chrome trace that ttatrace accepts with at least two pids. The
#      trace is left at .served-smoke.trace.json for CI to archive.
#
# Everything runs against built binaries (not `go run`) so the kill -9
# hits the real daemon process.
set -eu

WORK="${1:-.served-smoke}"
rm -rf "$WORK"
mkdir -p "$WORK"

echo "served-smoke: building binaries"
go build -o "$WORK/ttaserved" ./cmd/ttaserved
go build -o "$WORK/ttactl" ./cmd/ttactl
go build -o "$WORK/ttatrace" ./cmd/ttatrace

SPEC_FLAGS="-n 3 -degrees 1,2,3 -delta-init 4"

cleanup() {
    kill -9 "$DPID" 2>/dev/null || true
    kill -9 "$FPID" 2>/dev/null || true
}
DPID=""
FPID=""
trap cleanup EXIT

wait_addr() { # $1: addr file
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "served-smoke: daemon never bound" >&2; exit 1; }
        sleep 0.1
    done
}

echo "served-smoke: starting daemon"
"$WORK/ttaserved" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
    -data "$WORK/data" -j 2 2>"$WORK/daemon1.log" &
DPID=$!
wait_addr "$WORK/addr"

JOB=$("$WORK/ttactl" -addr-file "$WORK/addr" submit $SPEC_FLAGS |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "served-smoke: submit returned no job id" >&2; exit 1; }
echo "served-smoke: job $JOB submitted"

JOURNAL="$WORK/data/jobs/$JOB/journal.jsonl"
i=0
while [ "$(wc -l <"$JOURNAL" 2>/dev/null || echo 0)" -lt 2 ]; do
    i=$((i + 1))
    [ "$i" -gt 600 ] && { echo "served-smoke: no journal progress" >&2; exit 1; }
    sleep 0.1
done

echo "served-smoke: kill -9 mid-campaign ($(wc -l <"$JOURNAL") units journaled)"
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true
DPID=""

echo "served-smoke: restarting daemon (resume)"
rm -f "$WORK/addr"
"$WORK/ttaserved" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
    -data "$WORK/data" -j 2 2>"$WORK/daemon2.log" &
DPID=$!
wait_addr "$WORK/addr"

"$WORK/ttactl" -addr-file "$WORK/addr" wait "$JOB" >"$WORK/resumed-status.json"
"$WORK/ttactl" -addr-file "$WORK/addr" report "$JOB" >"$WORK/resumed.txt"

echo "served-smoke: running the same campaign fresh"
"$WORK/ttaserved" -addr 127.0.0.1:0 -addr-file "$WORK/addr2" \
    -data "$WORK/data2" -j 2 2>"$WORK/daemon3.log" &
FPID=$!
wait_addr "$WORK/addr2"
FRESH=$("$WORK/ttactl" -addr-file "$WORK/addr2" submit $SPEC_FLAGS -wait |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
"$WORK/ttactl" -addr-file "$WORK/addr2" report "$FRESH" >"$WORK/fresh.txt"

if ! cmp -s "$WORK/resumed.txt" "$WORK/fresh.txt"; then
    echo "served-smoke: FAIL: resumed report differs from fresh run" >&2
    diff "$WORK/resumed.txt" "$WORK/fresh.txt" >&2 || true
    exit 1
fi
echo "served-smoke: resumed report is byte-identical to fresh run"

echo "served-smoke: resubmitting the same spec (verdict cache)"
"$WORK/ttactl" -addr-file "$WORK/addr" submit $SPEC_FLAGS -wait >"$WORK/resubmit.json"
grep -q '"executed": 0' "$WORK/resubmit.json" ||
    { echo "served-smoke: FAIL: resubmission executed units" >&2
      cat "$WORK/resubmit.json" >&2; exit 1; }
TOTAL=$(sed -n 's/.*"total": \([0-9]*\).*/\1/p' "$WORK/resubmit.json")
grep -q "\"cached\": $TOTAL" "$WORK/resubmit.json" ||
    { echo "served-smoke: FAIL: resubmission not fully cached" >&2
      cat "$WORK/resubmit.json" >&2; exit 1; }
SAVED=$(sed -n 's/.*"saved_ms": \([0-9]*\).*/\1/p' "$WORK/resubmit.json")
[ -n "$SAVED" ] && [ "$SAVED" -gt 0 ] ||
    { echo "served-smoke: FAIL: warm resubmission reports no saved cost" >&2
      cat "$WORK/resubmit.json" >&2; exit 1; }
echo "served-smoke: resubmission fully served from cache ($TOTAL/$TOTAL units, ${SAVED}ms saved)"

echo "served-smoke: checking per-unit stats on the resumed job"
"$WORK/ttactl" -addr-file "$WORK/addr" units "$JOB" >"$WORK/units.json"
UNITS=$(grep -o '"unit":' "$WORK/units.json" | wc -l)
WITH_STATS=$(grep -o '"wall_ms":' "$WORK/units.json" | wc -l)
[ "$UNITS" -gt 0 ] && [ "$WITH_STATS" -eq "$UNITS" ] ||
    { echo "served-smoke: FAIL: $WITH_STATS/$UNITS units carry stats" >&2
      cat "$WORK/units.json" >&2; exit 1; }
RECOVERED=$(grep -o '"recovered": true' "$WORK/units.json" | wc -l)
echo "served-smoke: all $UNITS units carry stats ($RECOVERED recovered)"
"$WORK/ttactl" -addr-file "$WORK/addr" top -n 3 "$JOB" >/dev/null

echo "served-smoke: validating the Prometheus exposition"
"$WORK/ttactl" -addr-file "$WORK/addr" metrics -validate

echo "served-smoke: validating the merged multi-process trace"
"$WORK/ttactl" -addr-file "$WORK/addr" trace -o "$WORK/trace.json" "$JOB"
"$WORK/ttatrace" -min-pids 2 -min-cats 1 "$WORK/trace.json"
cp "$WORK/trace.json" .served-smoke.trace.json

echo "served-smoke: PASS"
