module ttastartup

go 1.22
