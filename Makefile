GO ?= go

# `make check` is the tier-1 gate: formatting, vet, build, the full test
# suite under the race detector, and the static analyzer over every shipped
# model configuration.
.PHONY: check
check: fmt vet build race lint-models

.PHONY: fmt
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# The race detector slows the fixpoint-heavy proof packages well past go
# test's default 10-minute per-package budget, hence the explicit timeout.
.PHONY: race
race:
	$(GO) test -race -timeout 45m ./...

# Lint the built-in TTA models: both topologies, big-bang on and off, all
# fault degrees. Fails on any error-level diagnostic.
.PHONY: lint-models
lint-models:
	$(GO) run ./cmd/ttalint -all
