GO ?= go

# `make check` is the tier-1 gate: formatting, vet, build, the full test
# suite under the race detector, the static analyzer over every shipped
# model configuration, the campaign, IC3, and observability smoke tests,
# and a short run of both fuzz harnesses.
.PHONY: check
check: fmt vet build race lint-models campaign-smoke ic3-smoke obs-smoke fuzz-smoke sim-smoke served-smoke

.PHONY: fmt
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# go vet plus the repo's own analyzers (cmd/ttavet): *Ctx parameter
# convention, obs nil-receiver discipline, wall-clock ban in the
# deterministic kernels.
.PHONY: vet
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/ttavet .

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# The race detector slows the fixpoint-heavy proof packages well past go
# test's default 10-minute per-package budget, hence the explicit timeout.
.PHONY: race
race:
	$(GO) test -race -timeout 45m ./...

# Lint the built-in TTA models: both topologies, big-bang on and off, all
# fault degrees. Fails on any error-level diagnostic.
.PHONY: lint-models
lint-models:
	$(GO) run ./cmd/ttalint -all -j 0

# Campaign smoke test: run a tiny n=3 sweep on two workers, cancel it
# gracefully after three jobs (the -cancel-after testing hook), then resume
# from the JSONL store and require the resumed run to skip recorded jobs
# and complete the report.
CAMPAIGN_SMOKE_OUT := .campaign-smoke.jsonl
.PHONY: campaign-smoke
campaign-smoke:
	@rm -f $(CAMPAIGN_SMOKE_OUT)
	$(GO) run ./cmd/ttacampaign -n 3 -degrees 1,2,3 -delta-init 4 -j 2 \
		-out $(CAMPAIGN_SMOKE_OUT) -cancel-after 3 -quiet -heartbeat 0 -no-report
	$(GO) run ./cmd/ttacampaign -n 3 -degrees 1,2,3 -delta-init 4 -j 2 \
		-out $(CAMPAIGN_SMOKE_OUT) -resume -quiet -heartbeat 0 -no-report
	@rm -f $(CAMPAIGN_SMOKE_OUT)

# IC3 smoke test: prove the n=3 safety lemma unboundedly with IC3 (the bus
# topology closes in under a second; the hub lemma needs minutes — see
# README), then exercise mid-run cancellation under the race detector so an
# interrupted SAT query is never misread as a proof.
.PHONY: ic3-smoke
ic3-smoke:
	$(GO) run ./cmd/ttacampaign -n 3 -topologies bus -degrees 1 -lemmas safety \
		-engines ic3 -delta-init 2 -quiet -heartbeat 0
	$(GO) test -race -run 'TestIC3CancelMidRun|TestTTAEnginesAgree/bus' ./internal/mc/ic3/ ./internal/mc/

# Fuzz smoke test: a fixed slice of both differential fuzz harnesses — the
# BDD register machine with auto-reordering against truth-table oracles,
# and random well-typed gcl expressions across interpreter, circuit and
# BDD semantics. The committed corpora under testdata/fuzz replay in plain
# `go test`; this target additionally mutates for 10 seconds each.
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzBDDOps$$' -fuzztime 10s ./internal/bdd
	$(GO) test -run '^$$' -fuzz '^FuzzExprEval$$' -fuzztime 10s ./internal/gcl

# Simulation-campaign smoke test: pause a Monte-Carlo fault-injection
# campaign after three batches, resume it on a different worker count, run
# the same spec fresh, and require the two reports to be byte-identical —
# the mcfi determinism contract end to end, including the replay pass.
SIM_SMOKE_DIR := .sim-smoke
.PHONY: sim-smoke
sim-smoke:
	@rm -rf $(SIM_SMOKE_DIR); mkdir -p $(SIM_SMOKE_DIR)
	$(GO) run ./cmd/ttasimfuzz -n 4 -samples 3000 -batch 500 -seed 7 -j 2 \
		-out $(SIM_SMOKE_DIR)/campaign.jsonl -stop-after-batches 3 -replay=false >/dev/null
	$(GO) run ./cmd/ttasimfuzz -n 4 -samples 3000 -batch 500 -seed 7 -j 4 \
		-out $(SIM_SMOKE_DIR)/campaign.jsonl -resume -report $(SIM_SMOKE_DIR)/resumed.json >/dev/null
	$(GO) run ./cmd/ttasimfuzz -n 4 -samples 3000 -batch 500 -seed 7 -j 1 \
		-out $(SIM_SMOKE_DIR)/fresh.jsonl -report $(SIM_SMOKE_DIR)/fresh.json >/dev/null
	cmp $(SIM_SMOKE_DIR)/resumed.json $(SIM_SMOKE_DIR)/fresh.json
	@rm -rf $(SIM_SMOKE_DIR)

# Daemon smoke test: submit a campaign to ttaserved, kill -9 the daemon
# mid-campaign, restart it on the same data directory, and require the
# resumed canonical report to be byte-identical to a fresh daemon's; then
# resubmit the same spec and require a 100% verdict-cache hit with zero
# units executed, per-unit stats for every unit, a valid Prometheus
# exposition, and a merged multi-process trace (kept at
# .served-smoke.trace.json for CI to archive). See scripts/served_smoke.sh.
SERVED_SMOKE_DIR := .served-smoke
.PHONY: served-smoke
served-smoke:
	sh scripts/served_smoke.sh $(SERVED_SMOKE_DIR)
	@rm -rf $(SERVED_SMOKE_DIR)

# Bench regression gate: re-run the quick serve and l2s benchmarks and
# diff each leaf-by-leaf against its committed BENCH_*.json. The l2s leg
# gates more than wall time: the experiment itself errors out if any SAT
# engine's liveness verdict disagrees with the symbolic fixpoint or a
# refutation lacks a lasso, so a compare run doubles as a cross-engine
# agreement check. The tolerance is generous because wall times on shared
# machines are noisy; CI runs this report-only
# (BENCH_COMPARE_FLAGS=-report-only) and humans tighten BENCH_COMPARE_TOL
# when chasing a suspected regression.
BENCH_COMPARE_TOL ?= 0.5
BENCH_COMPARE_FLAGS ?=
BENCH_COMPARE_OUT := .bench-compare.json
.PHONY: bench-compare
bench-compare:
	@rm -f $(BENCH_COMPARE_OUT)
	$(GO) run ./cmd/ttabench -exp serve -serve-out $(BENCH_COMPARE_OUT) >/dev/null
	$(GO) run ./cmd/ttabench -compare -tolerance $(BENCH_COMPARE_TOL) \
		$(BENCH_COMPARE_FLAGS) BENCH_serve.json $(BENCH_COMPARE_OUT)
	@rm -f $(BENCH_COMPARE_OUT)
	$(GO) run ./cmd/ttabench -exp l2s -l2s-out $(BENCH_COMPARE_OUT) >/dev/null
	$(GO) run ./cmd/ttabench -compare -tolerance $(BENCH_COMPARE_TOL) \
		$(BENCH_COMPARE_FLAGS) BENCH_l2s.json $(BENCH_COMPARE_OUT)
	@rm -f $(BENCH_COMPARE_OUT)

# Observability smoke test: record a Chrome trace of an unbounded IC3 proof
# on the bus model, then validate it with ttatrace — the trace must parse,
# keep timestamps ordered, and carry spans from at least three layers
# (engine, frame, sat).
OBS_SMOKE_TRACE := .obs-smoke.trace.json
.PHONY: obs-smoke
obs-smoke:
	@rm -f $(OBS_SMOKE_TRACE)
	$(GO) run ./cmd/ttamc -model bus -n 3 -lemma safety -engine ic3 \
		-delta-init 2 -trace $(OBS_SMOKE_TRACE) -metrics
	$(GO) run ./cmd/ttatrace -min-cats 3 -min-events 100 $(OBS_SMOKE_TRACE)
	@rm -f $(OBS_SMOKE_TRACE)
