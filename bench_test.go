package ttastartup_test

// One benchmark per table and figure of the paper's evaluation, at Quick
// scale so the whole suite runs in minutes (use cmd/ttabench -full for the
// paper's parameters). The shapes under comparison — who wins, how cost
// grows with fault degree and cluster size, where the bounded engine beats
// the symbolic one — are documented per experiment in EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"ttastartup/internal/core"
	"ttastartup/internal/exp"
	"ttastartup/internal/mc"
	"ttastartup/internal/tta"
	"ttastartup/internal/tta/sim"
	"ttastartup/internal/tta/startup"
)

// BenchmarkFig3FaultDegreeMatrix regenerates the fault-degree matrix.
func BenchmarkFig3FaultDegreeMatrix(b *testing.B) {
	for b.Loop() {
		m := tta.DegreeMatrix()
		if m[5][0] != 6 || m[0][0] != 1 {
			b.Fatal("matrix wrong")
		}
	}
}

// BenchmarkFig4 measures verification time per fault degree (three lemmas
// at each degree, like the paper's Fig. 4 rows).
func BenchmarkFig4(b *testing.B) {
	for _, degree := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			for b.Loop() {
				if _, _, err := exp.Fig4(exp.Quick, 3, []int{degree}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5Formulas evaluates the closed-form scenario counts.
func BenchmarkFig5Formulas(b *testing.B) {
	for b.Loop() {
		if _, _, err := exp.Fig5(exp.Quick, []int{3, 4, 5}, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5StateCount measures the exact reachable-state count of the
// degree-6 faulty-node model (the paper's 2^27..2^43 discussion).
func BenchmarkFig5StateCount(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for b.Loop() {
				if _, _, err := exp.Fig5(exp.Quick, []int{n}, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchFig6 runs one Fig. 6 sub-table row.
func benchFig6(b *testing.B, lemma core.Lemma, n int) {
	b.Helper()
	for b.Loop() {
		rows, _, err := exp.Fig6(exp.Quick, lemma, []int{n})
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].Eval {
			b.Fatalf("lemma %v violated at n=%d", lemma, n)
		}
	}
}

// BenchmarkFig6a: exhaustive fault simulation, safety, faulty node.
func BenchmarkFig6a(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchFig6(b, core.LemmaSafety, n) })
	}
}

// BenchmarkFig6b: exhaustive fault simulation, liveness, faulty node.
func BenchmarkFig6b(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchFig6(b, core.LemmaLiveness, n) })
	}
}

// BenchmarkFig6c: exhaustive fault simulation, timeliness, faulty node.
func BenchmarkFig6c(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchFig6(b, core.LemmaTimeliness, n) })
	}
}

// BenchmarkFig6d: exhaustive fault simulation, safety-2, faulty hub.
func BenchmarkFig6d(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchFig6(b, core.LemmaSafety2, n) })
	}
}

// BenchmarkBaselineExplicitVsSymbolic reproduces the Section 3 comparison
// on the original bus-topology algorithm.
func BenchmarkBaselineExplicitVsSymbolic(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for b.Loop() {
				rows, _, err := exp.Baseline([]int{n}, true)
				if err != nil {
					b.Fatal(err)
				}
				_ = rows
			}
		})
	}
}

// BenchmarkBigBang reproduces the Section 5.2 design exploration with both
// the symbolic and the bounded engine.
func BenchmarkBigBang(b *testing.B) {
	b.Run("symbolic", func(b *testing.B) {
		for b.Loop() {
			cfg := startup.DefaultConfig(3).WithFaultyHub(0)
			cfg.DeltaInit = 4
			cfg.DisableBigBang = true
			s, err := core.NewSuite(cfg, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Check(core.LemmaSafety, core.EngineSymbolic)
			if err != nil {
				b.Fatal(err)
			}
			if res.Verdict != mc.Violated {
				b.Fatal("expected violation")
			}
		}
	})
	b.Run("bmc", func(b *testing.B) {
		for b.Loop() {
			cfg := startup.DefaultConfig(3).WithFaultyHub(0)
			cfg.DeltaInit = 4
			cfg.DisableBigBang = true
			s, err := core.NewSuite(cfg, core.Options{BMCDepth: 16})
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Check(core.LemmaSafety, core.EngineBMC)
			if err != nil {
				b.Fatal(err)
			}
			if res.Verdict != mc.Violated {
				b.Fatal("expected violation")
			}
		}
	})
}

// BenchmarkWorstCase reproduces the Section 5.3 bound sweep.
func BenchmarkWorstCase(b *testing.B) {
	for b.Loop() {
		rows, _, err := exp.WorstCase(exp.Quick, []int{3})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Measured <= 0 || rows[0].Measured > rows[0].Paper {
			b.Fatalf("w_sup %d out of range", rows[0].Measured)
		}
	}
}

// BenchmarkFeedbackAblation reproduces the Section 5.1 comparison.
func BenchmarkFeedbackAblation(b *testing.B) {
	for _, fb := range []bool{true, false} {
		b.Run(fmt.Sprintf("feedback=%v", fb), func(b *testing.B) {
			for b.Loop() {
				cfg := startup.DefaultConfig(3).WithFaultyNode(1)
				cfg.DeltaInit = 4
				cfg.Feedback = fb
				s, err := core.NewSuite(cfg, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Check(core.LemmaSafety, core.EngineSymbolic)
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != mc.Holds {
					b.Fatal("safety violated")
				}
			}
		})
	}
}

// BenchmarkFaultInjectionCampaign measures the Monte-Carlo simulator (the
// statistical counterpart of exhaustive fault simulation).
func BenchmarkFaultInjectionCampaign(b *testing.B) {
	for b.Loop() {
		res, err := sim.RunCampaign(sim.CampaignConfig{
			N: 4, Runs: 500, Seed: 1, FaultyNode: 1, FaultDegree: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.AgreementOK != res.Runs {
			b.Fatal("agreement failure in campaign")
		}
	}
}
